package core

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// wanSource builds a bounded all-encrypted (WAN) GET stream for port 0.
func wanSource(count uint64, seed uint64) *workload.KVSStream {
	return kvsSource(count, 1.0, 1.0, seed)
}

// findEvent returns the first log event of the given kind for the engine.
func findEvent(log *EventLog, kind string, addr uint16) (FailureEvent, bool) {
	for _, e := range log.Events() {
		if e.Kind == kind && uint16(e.Engine) == addr {
			return e, true
		}
	}
	return FailureEvent{}, false
}

// TestFailoverToReplica is the acceptance scenario: two IPSec instances,
// wedge the primary at a pinned cycle, and require the control plane to
// detect within the configured window, reroute steering to the replica,
// resume encrypted-tenant service, and do all of it byte-identically
// across two runs.
func TestFailoverToReplica(t *testing.T) {
	// The 5 Gbps stream injects a request roughly every 65 cycles, so the
	// wedge at cycle 1000 lands mid-stream with ~25 requests still to come.
	const (
		count   = 40
		wedgeAt = 1000
		horizon = 80_000
	)
	run := func() (*NIC, string, string) {
		cfg := DefaultConfig()
		cfg.IPSecReplicas = 2
		cfg.Health = DefaultHealthConfig()
		cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: wedgeAt, Kind: fault.Wedge, Engine: AddrIPSec})
		nic := NewNIC(cfg, []engine.Source{wanSource(count, 11)})
		nic.Run(horizon)
		return nic, nic.Events.String(), nic.Summary(horizon)
	}
	nic, events, summary := run()

	// Every encrypted request was served end to end: decrypted, answered,
	// re-encrypted, and sent on the wire — despite the dead primary.
	if nic.WireLat.Count != count {
		t.Fatalf("wire responses = %d, want %d\nevents:\n%s\n%s", nic.WireLat.Count, count, events, nic.TileReport())
	}
	if nic.Drops.Value() != 0 {
		t.Errorf("drops = %d, want 0 (lossless failover)", nic.Drops.Value())
	}
	// The replica took over the crypto work.
	if dec, enc := nic.IPSecAlts[0].Counts(); dec == 0 || enc == 0 {
		t.Errorf("replica dec/enc = %d/%d, want both > 0", dec, enc)
	}

	// Detection within the configured window (plus a few check periods of
	// sampling slack and the arrival gap before the stall is visible).
	det, ok := findEvent(nic.Events, "detected", uint16(AddrIPSec))
	if !ok {
		t.Fatalf("no detection event:\n%s", events)
	}
	limit := uint64(wedgeAt) + nic.Cfg.Health.DetectWindow + 20*nic.Cfg.Health.CheckPeriod
	if det.Cycle < wedgeAt || det.Cycle > limit {
		t.Errorf("detected at cycle %d, want in [%d, %d]", det.Cycle, wedgeAt, limit)
	}
	if _, ok := findEvent(nic.Events, "rerouted", uint16(AddrIPSec)); !ok {
		t.Errorf("no reroute event:\n%s", events)
	}

	// MTTR (fault injection -> first completion on the replica) is bounded
	// by detection plus a small recovery tail.
	mttr, ok := nic.Events.MTTR(AddrIPSec)
	if !ok {
		t.Fatalf("no completed failure episode:\n%s", events)
	}
	if maxMTTR := nic.Cfg.Health.DetectWindow + 4000; mttr > maxMTTR {
		t.Errorf("MTTR = %d cycles, want <= %d\nevents:\n%s", mttr, maxMTTR, events)
	}

	// Determinism: an identical run produces byte-identical event log and
	// summary.
	_, events2, summary2 := run()
	if events != events2 {
		t.Errorf("event logs differ across identical runs:\n--- run 1\n%s--- run 2\n%s", events, events2)
	}
	if summary != summary2 {
		t.Errorf("summaries differ across identical runs:\n--- run 1\n%s\n--- run 2\n%s", summary, summary2)
	}
}

// TestPuntToHostWhenNoReplica exercises the Fig 2c degraded mode: with no
// standby crypto engine, the monitor punts encrypted traffic to the host,
// which decrypts in software.
func TestPuntToHostWhenNoReplica(t *testing.T) {
	const count = 30
	cfg := DefaultConfig()
	cfg.Health = DefaultHealthConfig()
	cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: 500, Kind: fault.Wedge, Engine: AddrIPSec})
	nic := NewNIC(cfg, []engine.Source{wanSource(count, 5)})
	nic.Run(80_000)

	if _, ok := findEvent(nic.Events, "punted", uint16(AddrIPSec)); !ok {
		t.Fatalf("no punt event:\n%s", nic.Events.String())
	}
	// Every request reached host software: the pre-wedge ones through the
	// normal decrypt path, the rest decrypted by the host itself.
	if gets, _ := nic.Host.Counts(); gets != count {
		t.Errorf("host served %d GETs, want %d\nevents:\n%s\n%s", gets, count, nic.Events.String(), nic.TileReport())
	}
	if nic.Host.SoftDecrypts() == 0 {
		t.Error("host performed no software decrypts in punt mode")
	}
	// The degraded mode trades wire service for availability: responses to
	// punted requests need the (dead) crypto engine and are absorbed.
	if nic.WireLat.Count >= count {
		t.Errorf("wire responses = %d, want < %d in degraded mode", nic.WireLat.Count, count)
	}
	if _, ok := nic.Events.MTTR(AddrIPSec); !ok {
		t.Errorf("punt episode never recovered:\n%s", nic.Events.String())
	}
}

// TestReintegrationAfterHeal wedges the primary for a fixed duration and
// requires the monitor to restore steering to it once the fault lifts.
func TestReintegrationAfterHeal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPSecReplicas = 2
	cfg.Health = DefaultHealthConfig()
	// Deep queues: the outage backlog (~60 requests by detection) plus the
	// post-drain burst must fit losslessly.
	cfg.QueueCap = 256
	// 400 requests at ~65 cycles apart keep traffic flowing until ~26k
	// cycles — well past the reintegration at ~14k — so the restored
	// primary demonstrably serves again.
	cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: 4000, Kind: fault.Wedge, Engine: AddrIPSec, For: 10_000})
	nic := NewNIC(cfg, []engine.Source{wanSource(400, 23)})

	nic.Run(14_500) // wedge lifted at 14000; reintegration by next check
	if _, ok := findEvent(nic.Events, "reintegrated", uint16(AddrIPSec)); !ok {
		t.Fatalf("no reintegration event by cycle 14500:\n%s", nic.Events.String())
	}
	decAtReint, _ := nic.IPSec.Counts()

	nic.Run(80_000)
	decEnd, _ := nic.IPSec.Counts()
	if decEnd <= decAtReint {
		t.Errorf("primary decrypts stuck at %d after reintegration\nevents:\n%s", decEnd, nic.Events.String())
	}
	if dec, _ := nic.IPSecAlts[0].Counts(); dec == 0 {
		t.Error("replica never served during the outage")
	}
	if nic.WireLat.Count != 400 {
		t.Errorf("wire responses = %d, want 400\nevents:\n%s\n%s", nic.WireLat.Count, nic.Events.String(), nic.TileReport())
	}
	// The log tells the whole story in order.
	want := []string{"fault-injected", "detected", "rerouted", "recovered", "fault-lifted", "reintegrated"}
	log := nic.Events.String()
	pos := 0
	for _, kind := range want {
		i := strings.Index(log[pos:], kind)
		if i < 0 {
			t.Fatalf("event %q missing or out of order:\n%s", kind, log)
		}
		pos += i
	}
}

// The soak tests below run chaos-generated fault plans (fault.RandomPlan)
// with the full invariant monitor armed — the same net cmd/chaos casts,
// pinned to fixed seeds so they are ordinary deterministic tests. Their
// names carry "Failover" on purpose: CI's determinism-race job selects
// Failover-named tests, so these run under -race every push.

// soakRun assembles the standard soak NIC — replicas, weighted tenants,
// health monitoring, every invariant check — arms the plan, and runs it.
func soakRun(t *testing.T, seed uint64, plan *fault.Plan, horizon uint64) *NIC {
	t.Helper()
	cfg := DefaultConfig()
	cfg.QueueCap = 256
	cfg.IPSecReplicas = 2
	cfg.TenantWeights = map[uint16]uint64{1: 2, 2: 1}
	cfg.Health = DefaultHealthConfig()
	cfg.Invariants = &invariant.Config{Every: 512}
	cfg.FaultPlan = plan
	nic := NewNIC(cfg, []engine.Source{
		kvsSource(150, 0.9, 0.5, seed),
		tenantGetSource(2, 150, seed+1),
	})
	nic.Run(horizon)
	return nic
}

// soakVerdict applies the common soak assertions: the invariant monitor
// held (and demonstrably ran), and the NIC still served traffic.
func soakVerdict(t *testing.T, seed uint64, plan *fault.Plan, nic *NIC, horizon uint64) {
	t.Helper()
	if err := nic.Invar.Err(); err != nil {
		t.Errorf("seed %d: invariant violations: %v\nplan:\n%s\nevents:\n%s",
			seed, err, plan.String(), nic.Events.String())
	}
	if min := horizon / 512 / 2; nic.Invar.Passes() < min {
		t.Errorf("seed %d: monitor ran %d passes, want >= %d", seed, nic.Invar.Passes(), min)
	}
	if gets, _ := nic.Host.Counts(); gets == 0 {
		t.Errorf("seed %d: NIC served nothing under the plan:\n%s", seed, plan.String())
	}
}

// TestFailoverSoakEngineFaults soaks the control plane against random
// engine-fault plans: wedges, slowdowns, and (tenant-scoped) flakes on the
// crypto and cache engines, each self-healing mid-run, with drains and
// reintegrations falling where the seeds put them.
func TestFailoverSoakEngineFaults(t *testing.T) {
	const horizon = 40_000
	spec := fault.PlanSpec{
		Horizon:   horizon,
		Engines:   []packet.Addr{AddrIPSec, AddrKVSCache},
		Tenants:   []uint16{1, 2},
		MaxEvents: 4,
	}
	for seed := uint64(100); seed < 103; seed++ {
		plan := fault.RandomPlan(seed, spec)
		soakVerdict(t, seed, plan, soakRun(t, seed, plan, horizon), horizon)
	}
}

// TestFailoverSoakLinkFaults soaks against fabric faults: random adjacent
// links degraded or severed outright while engine traffic and an occasional
// engine fault are in flight. Conservation must hold even while messages
// are wedged behind a dead link, and the standby vetting must refuse
// replicas stranded behind one.
func TestFailoverSoakLinkFaults(t *testing.T) {
	const horizon = 40_000
	mesh := DefaultConfig().Mesh
	spec := fault.PlanSpec{
		Horizon:    horizon,
		Engines:    []packet.Addr{AddrIPSec},
		MeshW:      mesh.Width,
		MeshH:      mesh.Height,
		MaxEvents:  3,
		AllowSever: true,
	}
	for seed := uint64(200); seed < 203; seed++ {
		plan := fault.RandomPlan(seed, spec)
		soakVerdict(t, seed, plan, soakRun(t, seed, plan, horizon), horizon)
	}
}

// TestFailoverSoakDrainReintegration layers a guaranteed outage — a wedge
// on the primary crypto engine long enough to build a queue backlog — over
// a random cache-fault background, and requires the full drain →
// failover → reintegration arc to complete cleanly and deterministically.
func TestFailoverSoakDrainReintegration(t *testing.T) {
	const horizon = 50_000
	run := func(seed uint64) (*NIC, *fault.Plan, string, string) {
		plan := fault.RandomPlan(seed, fault.PlanSpec{
			Horizon:   horizon / 2,
			Engines:   []packet.Addr{AddrKVSCache},
			MaxEvents: 2,
		}).Add(fault.Event{At: 3000, Kind: fault.Wedge, Engine: AddrIPSec, For: 12_000})
		cfg := DefaultConfig()
		cfg.QueueCap = 256
		cfg.IPSecReplicas = 2
		cfg.Health = DefaultHealthConfig()
		cfg.Invariants = &invariant.Config{Every: 512}
		cfg.FaultPlan = plan
		nic := NewNIC(cfg, []engine.Source{wanSource(300, seed)})
		nic.Run(horizon)
		return nic, plan, nic.Events.String(), nic.Summary(horizon)
	}
	for seed := uint64(300); seed < 303; seed++ {
		nic, plan, events, _ := run(seed)
		soakVerdict(t, seed, plan, nic, horizon)
		// The wedge caught a backlog, so the failover drained it...
		if _, ok := findEvent(nic.Events, "drained", uint16(AddrIPSec)); !ok {
			t.Errorf("seed %d: no drain despite a mid-stream wedge:\n%s", seed, events)
		}
		// ...and the healed primary was reintegrated and served again.
		if _, ok := findEvent(nic.Events, "reintegrated", uint16(AddrIPSec)); !ok {
			t.Errorf("seed %d: primary never reintegrated:\n%s", seed, events)
		}
		if dec, _ := nic.IPSecAlts[0].Counts(); dec == 0 {
			t.Errorf("seed %d: replica never served during the outage", seed)
		}
	}
	// Soak runs replay byte-identically: a failing seed is a complete
	// reproducer (this is what chaos-shrunk plans rely on).
	_, _, ev1, sum1 := run(300)
	_, _, ev2, sum2 := run(300)
	if ev1 != ev2 || sum1 != sum2 {
		t.Error("seed 300 soak run is not deterministic across identical runs")
	}
}
