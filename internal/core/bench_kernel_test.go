package core

import (
	"fmt"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// benchNIC assembles the benchmark NIC: the canonical two-port
// configuration under a saturating two-tenant mix, so the Eval phase has
// work on every tile each cycle.
func benchNIC(workers int, fastForward bool, load float64, pool *packet.MessagePool) *NIC {
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.FastForward = fastForward
	return NewNIC(cfg, benchSources(load, pool))
}

// benchSources is the two-tenant saturating mix every throughput
// benchmark (and the invariant-overhead gate) feeds the NIC.
func benchSources(load float64, pool *packet.MessagePool) []engine.Source {
	freq := DefaultConfig().FreqHz
	return []engine.Source{
		workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 100 * load, FreqHz: freq,
			Keys: 1024, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 256,
			Seed: 21,
		}),
		workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 100 * load, FreqHz: freq,
			Tenant: 2, Class: packet.ClassBulk, Seed: 22, Pool: pool,
		}),
	}
}

// BenchmarkKernelThroughput measures simulated cycles per wall-second and
// delivered messages per wall-second at several Eval worker counts over a
// saturating workload. Run with -benchmem to see the allocation diet.
func BenchmarkKernelThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			nic := benchNIC(workers, false, 0.9, nil)
			defer nic.Close()
			nic.Run(2_000) // warm caches and fill the pipeline
			before := nic.WireLat.Count + nic.HostLat.Count
			b.ResetTimer()
			nic.Run(uint64(b.N))
			b.StopTimer()
			delivered := nic.WireLat.Count + nic.HostLat.Count - before
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "simcycles/s")
				b.ReportMetric(float64(delivered)/sec, "msgs/s")
			}
		})
	}
}

// BenchmarkKernelSaturatedMode pits the event-driven kernel against the
// ticked oracle on the identical workers-1 saturating assembly. The pair
// is measured in one process on one host, so the msgs/s ratio between the
// two sub-benchmarks is the event engine's speedup — the number the
// saturated_event_mode stage in BENCH_kernel.json records and benchgate
// guards.
func BenchmarkKernelSaturatedMode(b *testing.B) {
	for _, mode := range []string{"ticked", "event"} {
		b.Run(mode, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = 1
			cfg.NoEventEngine = mode == "ticked"
			nic := NewNIC(cfg, benchSources(0.9, nil))
			defer nic.Close()
			nic.Run(2_000) // warm caches and fill the pipeline
			before := nic.WireLat.Count + nic.HostLat.Count
			b.ResetTimer()
			nic.Run(uint64(b.N))
			b.StopTimer()
			delivered := nic.WireLat.Count + nic.HostLat.Count - before
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "simcycles/s")
				b.ReportMetric(float64(delivered)/sec, "msgs/s")
			}
		})
	}
}

// BenchmarkKernelThroughputPooled is the workers-1 saturating run with the
// message pool wired from wire egress back to the bulk generator — the
// -benchmem comparison point for the allocation diet.
func BenchmarkKernelThroughputPooled(b *testing.B) {
	pool := packet.NewMessagePool()
	nic := benchNIC(1, false, 0.9, pool)
	defer nic.Close()
	recycle := func(m *packet.Message, _ uint64) {
		if m.Tenant == 2 {
			pool.Put(m)
		}
	}
	nic.WireLat.OnDeliver = recycle
	nic.HostLat.OnDeliver = recycle
	nic.Run(2_000)
	b.ResetTimer()
	nic.Run(uint64(b.N))
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "simcycles/s")
	}
}

// BenchmarkKernelLowLoadFastForward measures the low-load latency-curve
// case: a trickle of traffic with long idle gaps between packets. The
// fast-forwarding kernel jumps the gaps; the stepping kernel grinds
// through them. Simulated cycles per wall-second is the headline metric.
func BenchmarkKernelLowLoadFastForward(b *testing.B) {
	for _, ff := range []bool{false, true} {
		name := "step"
		if ff {
			name = "fastforward"
		}
		b.Run(name, func(b *testing.B) {
			nic := benchNIC(0, ff, 0.001, nil)
			defer nic.Close()
			b.ResetTimer()
			nic.Run(uint64(b.N))
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "simcycles/s")
				b.ReportMetric(float64(nic.Builder.Kernel.SkippedCycles()), "skipped")
			}
		})
	}
}
