package core

import (
	"testing"
	"time"

	"github.com/panic-nic/panic/internal/invariant"
)

// BenchmarkInvariantOverhead measures the monitor's cost on the
// saturating workload: off, the default 1-in-2048-cycle sampling, and an
// aggressive 1-in-64. ROBUSTNESS.md's overhead table quotes this
// benchmark's msgs/s column; the acceptance bound (<= 5% at the default
// interval) is enforced by TestInvariantOverheadBound.
func BenchmarkInvariantOverhead(b *testing.B) {
	cases := []struct {
		name string
		inv  *invariant.Config
	}{
		{"off", nil},
		{"every-2048", &invariant.Config{Every: 2048}},
		{"every-64", &invariant.Config{Every: 64}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.TenantWeights = map[uint16]uint64{1: 3, 2: 1}
			cfg.Health = DefaultHealthConfig()
			cfg.Invariants = c.inv
			nic := NewNIC(cfg, benchSources(0.9, nil))
			defer nic.Close()
			nic.Run(2_000) // warm caches and fill the pipeline
			before := nic.WireLat.Count + nic.HostLat.Count
			b.ResetTimer()
			nic.Run(uint64(b.N))
			b.StopTimer()
			delivered := nic.WireLat.Count + nic.HostLat.Count - before
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "simcycles/s")
				b.ReportMetric(float64(delivered)/sec, "msgs/s")
			}
			if c.inv != nil {
				if err := nic.Invar.Err(); err != nil {
					b.Fatalf("benchmark run not invariant-clean: %v", err)
				}
			}
		})
	}
}

// TestInvariantOverheadBound is the acceptance gate: at the default
// sampling interval the armed monitor may cost at most 5% of saturating
// throughput. Identical simulated work runs with the monitor off and on
// (the stream is bit-identical by construction), so the ratio of the best
// wall times bounds the overhead; three interleaved trials with min-taking
// absorb scheduler noise.
func TestInvariantOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	const cycles = 150_000
	measure := func(inv *invariant.Config) time.Duration {
		cfg := DefaultConfig()
		cfg.TenantWeights = map[uint16]uint64{1: 3, 2: 1}
		cfg.Health = DefaultHealthConfig()
		cfg.Invariants = inv
		nic := NewNIC(cfg, benchSources(0.9, nil))
		defer nic.Close()
		nic.Run(2_000)
		start := time.Now()
		nic.Run(cycles)
		elapsed := time.Since(start)
		if inv != nil {
			if err := nic.Invar.Err(); err != nil {
				t.Fatalf("gate run not invariant-clean: %v", err)
			}
		}
		return elapsed
	}
	best := func(inv *invariant.Config) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := measure(inv); d < b {
				b = d
			}
		}
		return b
	}
	// Interleave: one throwaway pair warms the process, then best-of-3.
	measure(nil)
	off := best(nil)
	on := best(&invariant.Config{})
	overhead := float64(on-off) / float64(off)
	t.Logf("off=%v on=%v overhead=%.2f%%", off, on, overhead*100)
	if overhead > 0.05 {
		t.Errorf("invariant monitor costs %.1f%% at the default interval, budget is 5%% (off=%v on=%v)",
			overhead*100, off, on)
	}
}
