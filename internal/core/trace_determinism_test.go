package core

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

// traceRun mirrors detRun — same two-port traffic, fault plan, replicas,
// and health monitor — but with a tracer attached, and returns the
// exported Chrome JSON plus the NIC fingerprint.
func traceRun(c detCase, horizon uint64, sample uint64) (string, string) {
	cfg := DefaultConfig()
	cfg.Workers = c.workers
	cfg.FastForward = c.fastForward
	cfg.IPSecReplicas = 2
	cfg.Health = DefaultHealthConfig()
	cfg.Tracer = trace.New(trace.Options{FreqHz: cfg.FreqHz, Sample: sample})
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: 1000, Kind: fault.Wedge, Engine: AddrIPSec, For: 30_000}).
		Add(fault.Event{At: 2500, Kind: fault.FlakeDrop, Engine: AddrKVSCache, EveryN: 7, For: 20_000})
	srcs := []engine.Source{
		kvsSource(60, 0.8, 0.5, 7),
		workload.NewMerge(
			kvsSource(40, 1.0, 0, 11),
			workload.NewFixedStream(workload.FixedStreamConfig{
				FrameBytes: 256, RateGbps: 2, FreqHz: 500e6,
				Tenant: 3, Count: 30, Seed: 13,
			}),
		),
	}
	nic := NewNIC(cfg, srcs)
	defer nic.Close()
	nic.Run(horizon)
	var sb strings.Builder
	if err := cfg.Tracer.Set().WriteChrome(&sb); err != nil {
		panic(err)
	}
	return sb.String(), nic.Fingerprint()
}

// TestTraceDeterminism is the observability layer's acceptance test: the
// exported trace must be byte-identical across the sequential kernel,
// parallel kernels, and fast-forwarding kernels — per-component buffers
// drained in creation order make worker scheduling invisible, and skipped
// idle cycles run no phases so they can emit nothing.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode NIC runs are slow")
	}
	const horizon = 120_000
	wantTrace, wantFP := traceRun(detCases[0], horizon, 1)
	if !strings.Contains(wantTrace, `"name":"deliver"`) {
		t.Fatalf("sequential trace contains no deliver spans; tracing is not wired up")
	}
	if !strings.Contains(wantTrace, `"name":"control"`) {
		t.Errorf("trace missing control spans despite fault plan + health monitor")
	}
	for _, c := range detCases[1:] {
		gotTrace, gotFP := traceRun(c, horizon, 1)
		if gotFP != wantFP {
			t.Errorf("mode %s: NIC fingerprint diverged:\n%s", c.name, diffLines(wantFP, gotFP))
		}
		if gotTrace != wantTrace {
			t.Errorf("mode %s: trace diverged from sequential:\n%s", c.name, diffLines(wantTrace, gotTrace))
		}
	}
}

// TestTraceSamplingSubset checks that sampling keeps a strict, pure subset:
// every span in a 1-in-4 trace must appear for a message the filter keeps,
// and tracing itself must not perturb the simulation.
func TestTraceSamplingSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("NIC runs are slow")
	}
	const horizon = 60_000
	seq := detCase{name: "sequential"}
	_, fullFP := traceRun(seq, horizon, 1)
	sampled, sampledFP := traceRun(seq, horizon, 4)
	if sampledFP != fullFP {
		t.Errorf("sampling changed the simulation result:\n%s", diffLines(fullFP, sampledFP))
	}
	set, err := trace.ReadChrome(strings.NewReader(sampled))
	if err != nil {
		t.Fatalf("re-reading sampled trace: %v", err)
	}
	for _, id := range set.Messages() {
		if id%4 != 0 {
			t.Errorf("sampled trace contains message %d, which fails id%%4==0", id)
		}
	}
	// The plain (untraced) fingerprint must match too: attaching a tracer
	// must not change scheduling, drops, or latency by a single cycle.
	if plain := detRun(seq, horizon); plain != fullFP {
		t.Errorf("attaching a tracer perturbed the simulation:\n%s", diffLines(plain, fullFP))
	}
}
