package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
)

func progMsg(build func() *packet.Packet, class packet.Class, tenant uint16) *packet.Message {
	return &packet.Message{Pkt: build(), Class: class, Tenant: tenant, Port: 0}
}

func getPkt(srcIP packet.IP4, key uint64) *packet.Packet {
	return packet.NewPacket(0,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: srcIP, Dst: packet.IP4{10, 255, 0, 2}},
		&packet.UDP{SrcPort: 5001, DstPort: packet.KVSPort},
		&packet.KVS{Op: packet.KVSGet, Tenant: 1, Key: key},
	)
}

func respPkt(dstIP packet.IP4) *packet.Packet {
	return packet.NewPacket(256,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 255, 0, 2}, Dst: dstIP},
		&packet.UDP{SrcPort: packet.KVSPort, DstPort: 5001},
		&packet.KVS{Op: packet.KVSGetResp, Tenant: 1, Key: 1, ValueLen: 256},
	)
}

func espPkt() *packet.Packet {
	return packet.NewPacket(128,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 60, Protocol: packet.ProtoESP, Src: packet.IP4{203, 0, 1, 2}, Dst: packet.IP4{10, 255, 0, 2}},
		&packet.ESP{SPI: 1, Seq: 1},
	)
}

func chainAddrs(m *packet.Message) []packet.Addr {
	c := m.Chain()
	if c == nil {
		return nil
	}
	addrs := make([]packet.Addr, len(c.Hops))
	for i, h := range c.Hops {
		addrs[i] = h.Engine
	}
	return addrs
}

func TestProgramChainsGetThroughCacheAndDMA(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	m := progMsg(func() *packet.Packet { return getPkt(packet.IP4{10, 0, 0, 1}, 7) }, packet.ClassLatency, 1)
	res, err := prog.Process(m, 100)
	if err != nil || res.Drop {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	got := chainAddrs(m)
	want := []packet.Addr{AddrKVSCache, AddrDMA}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("GET chain = %v, want %v", got, want)
	}
	// Latency class -> small slack on every hop.
	for i, h := range m.Chain().Hops {
		if h.Slack != DefaultProgramConfig(2).SlackLatency {
			t.Errorf("hop %d slack = %d", i, h.Slack)
		}
	}
}

func TestProgramChainsESPThroughIPSec(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	m := progMsg(espPkt, packet.ClassLatency, 3)
	if _, err := prog.Process(m, 0); err != nil {
		t.Fatal(err)
	}
	got := chainAddrs(m)
	if len(got) != 1 || got[0] != AddrIPSec {
		t.Errorf("ESP chain = %v, want [ipsec]", got)
	}
}

func TestProgramRoutesResponsesByClientSubnet(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	cases := []struct {
		dst  packet.IP4
		want []packet.Addr
	}{
		// 10.0.x.x -> port 0; 10.1.x.x -> port 1.
		{packet.IP4{10, 0, 0, 5}, []packet.Addr{AddrEthBase}},
		{packet.IP4{10, 1, 0, 5}, []packet.Addr{AddrEthBase + 1}},
		// WAN clients (203/8): encrypt first, then the WAN port.
		{packet.IP4{203, 0, 1, 2}, []packet.Addr{AddrIPSec, AddrEthBase}},
	}
	for _, c := range cases {
		m := progMsg(func() *packet.Packet { return respPkt(c.dst) }, packet.ClassLatency, 1)
		if _, err := prog.Process(m, 0); err != nil {
			t.Fatal(err)
		}
		got := chainAddrs(m)
		if len(got) != len(c.want) {
			t.Errorf("resp to %v chain = %v, want %v", c.dst, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("resp to %v chain = %v, want %v", c.dst, got, c.want)
			}
		}
	}
}

func TestProgramBulkSlackAndControlLossless(t *testing.T) {
	cfg := DefaultProgramConfig(2)
	prog := BuildProgram(cfg)
	bulk := progMsg(func() *packet.Packet { return getPkt(packet.IP4{10, 0, 0, 1}, 1) }, packet.ClassBulk, 2)
	if _, err := prog.Process(bulk, 0); err != nil {
		t.Fatal(err)
	}
	if s := bulk.Chain().Hops[0].Slack; s != cfg.SlackBulk {
		t.Errorf("bulk slack = %d, want %d", s, cfg.SlackBulk)
	}
	ctrl := progMsg(func() *packet.Packet { return getPkt(packet.IP4{10, 0, 0, 1}, 1) }, packet.ClassControl, 0)
	if _, err := prog.Process(ctrl, 0); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Chain().Lossless() {
		t.Error("control-class chain not flagged lossless")
	}
	if bulk.Chain().Lossless() {
		t.Error("bulk chain flagged lossless")
	}
}

func TestProgramLoadBalancesQueues(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		m := progMsg(func() *packet.Packet {
			return getPkt(packet.IP4{10, 0, byte(i >> 8), byte(i)}, uint64(i))
		}, packet.ClassLatency, 1)
		res, err := prog.Process(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Queue >= DefaultProgramConfig(2).Queues {
			t.Fatalf("queue %d out of range", res.Queue)
		}
		seen[res.Queue] = true
	}
	if len(seen) < 4 {
		t.Errorf("flow hashing used only %d queues", len(seen))
	}
}

func TestProgramTenantCountersAccumulate(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	// The wire header is authoritative for tenant classification: the
	// tenantmap stage copies the KVS tenant into meta.tenant, overriding
	// whatever ingress tenant the message arrived with.
	pkt := func() *packet.Packet {
		return packet.NewPacket(0,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 255, 0, 2}},
			&packet.UDP{SrcPort: 5001, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: 9, Key: 1},
		)
	}
	for i := 0; i < 5; i++ {
		m := progMsg(pkt, packet.ClassLatency, 0)
		if _, err := prog.Process(m, 0); err != nil {
			t.Fatal(err)
		}
		if m.Tenant != 9 {
			t.Fatalf("message tenant after classification = %d, want 9", m.Tenant)
		}
	}
	if got := prog.Regs.Read("tenant_pkts", 9); got != 5 {
		t.Errorf("tenant 9 counter = %d, want 5", got)
	}
}

// TestProgramTenantChainRewriteScoped exercises the control-plane rewrite
// unit behind tenant fault domains: with per-tenant chain tables built,
// RewriteEngineTenant must repoint exactly one tenant's steering and leave
// every other tenant's — and the shared classify fallback — untouched.
func TestProgramTenantChainRewriteScoped(t *testing.T) {
	cfg := DefaultProgramConfig(2)
	cfg.Tenants = []uint16{1, 2}
	prog := BuildProgram(cfg)

	chain := func(tenant uint16) []packet.Addr {
		m := progMsg(func() *packet.Packet {
			return packet.NewPacket(0,
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 255, 0, 2}},
				&packet.UDP{SrcPort: 5001, DstPort: packet.KVSPort},
				&packet.KVS{Op: packet.KVSGet, Tenant: tenant, Key: 1},
			)
		}, packet.ClassLatency, 0)
		if _, err := prog.Process(m, 0); err != nil {
			t.Fatal(err)
		}
		if m.Tenant != tenant {
			t.Fatalf("classified tenant = %d, want %d", m.Tenant, tenant)
		}
		return chainAddrs(m)
	}
	assertChain := func(tenant uint16, want []packet.Addr) {
		t.Helper()
		got := chain(tenant)
		if len(got) != len(want) {
			t.Fatalf("tenant %d chain = %v, want %v", tenant, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tenant %d chain = %v, want %v", tenant, got, want)
			}
		}
	}

	normal := []packet.Addr{AddrKVSCache, AddrDMA}
	assertChain(1, normal)
	assertChain(2, normal)

	// Punt tenant 1's cache hop to an alias. The tenantchain stage holds one
	// GET and one SET entry per tenant, each with a single cache hop.
	const alias = AddrPuntBase
	if n := prog.RewriteEngineTenant(AddrKVSCache, alias, rmt.FieldMetaTenant, 1); n != 2 {
		t.Fatalf("rewrote %d hops, want 2 (tenant 1's GET and SET entries)", n)
	}
	assertChain(1, []packet.Addr{alias, AddrDMA})
	// Tenant 2 and unknown tenants (shared classify entries) keep the cache.
	assertChain(2, normal)
	assertChain(7, normal)

	// The inverse rewrite restores tenant 1 exactly.
	if n := prog.RewriteEngineTenant(alias, AddrKVSCache, rmt.FieldMetaTenant, 1); n != 2 {
		t.Fatalf("inverse rewrite touched %d hops, want 2", n)
	}
	assertChain(1, normal)
}

func TestInstallDropRule(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	InstallDropRule(prog, uint64(192)<<24|uint64(168)<<16, 16, 50)
	dropped := progMsg(func() *packet.Packet { return getPkt(packet.IP4{192, 168, 9, 9}, 1) }, packet.ClassLatency, 1)
	res, err := prog.Process(dropped, 0)
	if err != nil || !res.Drop {
		t.Errorf("matching traffic not dropped: %+v err=%v", res, err)
	}
	kept := progMsg(func() *packet.Packet { return getPkt(packet.IP4{10, 0, 0, 1}, 1) }, packet.ClassLatency, 1)
	res, err = prog.Process(kept, 0)
	if err != nil || res.Drop {
		t.Errorf("non-matching traffic dropped: %+v err=%v", res, err)
	}
}

func TestProgramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-port program did not panic")
		}
	}()
	BuildProgram(ProgramConfig{Ports: 0})
}

func TestProgramSplitSharesState(t *testing.T) {
	prog := BuildProgram(DefaultProgramConfig(2))
	parts := prog.Split(2)
	if parts[0].Regs != prog.Regs {
		t.Error("split parts must share registers")
	}
	total := 0
	for _, p := range parts {
		total += p.NumStages()
	}
	if total != prog.NumStages() {
		t.Errorf("split stages = %d, want %d", total, prog.NumStages())
	}
	_ = rmt.StateAccept // keep rmt import for future additions
}
