package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

// benchTraceNIC is benchNIC's single-worker saturating configuration with
// an optional tracer attached. An uncapped MaxSpans would hold every span
// of a long -benchtime run, so the cap stays at the default and Dropped
// absorbs the tail; span emission cost is identical either way.
func benchTraceNIC(tr *trace.Tracer) *NIC {
	cfg := DefaultConfig()
	cfg.Tracer = tr
	srcs := []engine.Source{
		workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 90, FreqHz: cfg.FreqHz,
			Keys: 1024, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 256,
			Seed: 21,
		}),
		workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 90, FreqHz: cfg.FreqHz,
			Tenant: 2, Class: packet.ClassBulk, Seed: 22,
		}),
	}
	return NewNIC(cfg, srcs)
}

// BenchmarkTraceOverhead measures the per-cycle cost of the tracing
// subsystem on the saturating benchmark workload: off (nil tracer),
// sampled 1-in-64, sampled 1-in-8, and full tracing. Run with -benchmem;
// EXPERIMENTS.md's "Tracing overhead" table is produced from this
// benchmark's ns/op and allocs/op columns.
func BenchmarkTraceOverhead(b *testing.B) {
	cases := []struct {
		name   string
		tracer func() *trace.Tracer
	}{
		{"off", func() *trace.Tracer { return nil }},
		{"sample-64", func() *trace.Tracer { return trace.New(trace.Options{Sample: 64}) }},
		{"sample-8", func() *trace.Tracer { return trace.New(trace.Options{Sample: 8}) }},
		{"full", func() *trace.Tracer { return trace.New(trace.Options{}) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			tr := c.tracer()
			nic := benchTraceNIC(tr)
			defer nic.Close()
			nic.Run(2_000) // warm caches and fill the pipeline
			b.ResetTimer()
			nic.Run(uint64(b.N))
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "simcycles/s")
			}
			if tr != nil {
				set := tr.Set()
				b.ReportMetric(float64(len(set.Spans)+int(set.Dropped))/float64(b.N), "spans/cycle")
			}
		})
	}
}
