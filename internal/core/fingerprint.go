package core

import (
	"fmt"
	"sort"
)

// Fingerprint reduces the NIC's current state to a byte-comparable string
// covering everything the experiments report: collector stats (counts,
// bytes, and full latency distributions), per-tile and per-tenant
// counters, fabric stats, the health/fault event log, and the current
// cycle. Two runs of the same configuration are correct exactly when
// their fingerprints are byte-identical; the determinism matrix (core and
// fleet) and the fleet-smoke CI job compare nothing else.
func (n *NIC) Fingerprint() string {
	s := fmt.Sprintf("cycle=%d\n", n.Now())
	s += fmt.Sprintf("wire: n=%d bytes=%d mean=%.6f p50=%.1f p99=%.1f max=%.1f\n",
		n.WireLat.Count, n.WireLat.Bytes, n.WireLat.All.Mean(),
		n.WireLat.All.P50(), n.WireLat.All.P99(), n.WireLat.All.Max())
	s += fmt.Sprintf("host: n=%d bytes=%d mean=%.6f p50=%.1f p99=%.1f max=%.1f\n",
		n.HostLat.Count, n.HostLat.Bytes, n.HostLat.All.Mean(),
		n.HostLat.All.P50(), n.HostLat.All.P99(), n.HostLat.All.Max())
	tenants := make([]int, 0, len(n.WireLat.ByTenant))
	for tn := range n.WireLat.ByTenant {
		tenants = append(tenants, int(tn))
	}
	sort.Ints(tenants)
	for _, tn := range tenants {
		h := n.WireLat.ByTenant[uint16(tn)]
		s += fmt.Sprintf("wire tenant %d: n=%d mean=%.6f\n", tn, h.Count(), h.Mean())
	}
	s += fmt.Sprintf("drops=%d\n", n.Drops.Value())
	for _, tile := range n.Builder.Tiles {
		st := tile.Stats()
		s += fmt.Sprintf("tile %s: proc=%d busy=%d drop=%d emit=%d qwait=%d stall=%d fdrop=%d corr=%d drain=%d qlen=%d\n",
			tile.Name(), st.Processed, st.BusyCycles, st.Dropped, st.Emitted,
			st.QueueWaitTotal, st.StallCycles, st.FaultDropped, st.Corrupted, st.Drained, tile.QueueLen())
		tt := tile.TenantStats()
		ids := make([]int, 0, len(tt))
		for id := range tt {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			ta := tt[uint16(id)]
			s += fmt.Sprintf("  tenant %d: enq=%d proc=%d svc=%d qwait=%d drop=%d\n",
				id, ta.Enqueued, ta.Processed, ta.ServiceCycles, ta.QueueWaitTotal, ta.Dropped)
		}
	}
	for i, r := range n.Builder.RMTs {
		st := r.Stats()
		s += fmt.Sprintf("rmt %d: acc=%d emit=%d drop=%d unrouted=%d stall=%d qdrop=%d\n",
			i, st.Accepted, st.Emitted, st.Dropped, st.Unrouted, st.StallCycles, st.QueueDropped)
	}
	ms := n.Builder.Mesh.Stats()
	s += fmt.Sprintf("mesh: inj=%d del=%d hops=%d lat=%d\n",
		ms.Injected, ms.Delivered, ms.FlitHops, ms.TotalLatency)
	for _, m := range n.MACs {
		s += fmt.Sprintf("mac %s: rx=%d tx=%d rxbits=%d txbits=%d\n",
			m.Name(), m.RxCount(), m.TxCount(), m.RxBits(), m.TxBits())
	}
	gets, sets := n.Host.Counts()
	s += fmt.Sprintf("host kvs: gets=%d sets=%d backlog=%d\n", gets, sets, n.Host.TxBacklog())
	s += "events:\n" + n.Events.String()
	return s
}
