package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// kvsSource builds a bounded single-tenant KVS stream for port 0.
func kvsSource(count uint64, getRatio, wanShare float64, seed uint64) *workload.KVSStream {
	return workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 5, FreqHz: 500e6,
		Keys: 64, GetRatio: getRatio, WANShare: wanShare,
		ValueBytes: 256, Count: count, Seed: seed,
	})
}

func TestNICEndToEndGetMissServedByHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	src := kvsSource(20, 1.0, 0, 42) // all GETs, all LAN, cold cache
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	// Every GET missed the cold cache, reached the host, and a response
	// left on the wire.
	hits, misses, _ := nic.Cache.Counts()
	if hits != 0 || misses != 20 {
		t.Errorf("cache hits/misses = %d/%d, want 0/20", hits, misses)
	}
	gets, _ := nic.Host.Counts()
	if gets != 20 {
		t.Errorf("host served %d GETs, want 20", gets)
	}
	if nic.WireLat.Count != 20 {
		t.Errorf("wire responses = %d, want 20", nic.WireLat.Count)
	}
	if nic.Drops.Value() != 0 {
		t.Errorf("drops = %d", nic.Drops.Value())
	}
	// Responses must be well-formed GET responses.
	if nic.HostLat.Count != 20 {
		t.Errorf("host deliveries = %d", nic.HostLat.Count)
	}
}

func TestNICCacheHitBypassesHost(t *testing.T) {
	cfg := DefaultConfig()
	src := kvsSource(30, 1.0, 0, 7)
	nic := NewNIC(cfg, []engine.Source{src})
	// Warm the cache with every key the tenant can draw.
	for k := uint64(0); k < 64; k++ {
		nic.Cache.Warm(k, 256)
	}
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	hits, misses, _ := nic.Cache.Counts()
	if hits != 30 || misses != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 30/0", hits, misses)
	}
	gets, _ := nic.Host.Counts()
	if gets != 0 {
		t.Errorf("host served %d GETs, want 0 (CPU bypass)", gets)
	}
	issued, replies := nic.RDMA.Counts()
	if issued != 30 || replies != 30 {
		t.Errorf("RDMA issued/replies = %d/%d", issued, replies)
	}
	if nic.WireLat.Count != 30 {
		t.Errorf("wire responses = %d, want 30", nic.WireLat.Count)
	}
	// CPU-bypass responses skip the ~1000-cycle host path: p50 RTT must
	// be well under the host service time.
	if p50 := nic.WireLat.All.P50(); p50 >= float64(cfg.HostCycles) {
		t.Errorf("bypass p50 = %v cycles, want < host %d", p50, cfg.HostCycles)
	}
}

func TestNICCacheHitFasterThanMiss(t *testing.T) {
	run := func(warm bool) float64 {
		cfg := DefaultConfig()
		src := kvsSource(25, 1.0, 0, 9)
		nic := NewNIC(cfg, []engine.Source{src})
		if warm {
			for k := uint64(0); k < 64; k++ {
				nic.Cache.Warm(k, 256)
			}
		}
		if !nic.RunQuiet(2000, 2_000_000) {
			t.Fatal("NIC did not go quiet")
		}
		return nic.WireLat.All.P50()
	}
	hit, miss := run(true), run(false)
	if hit*2 >= miss {
		t.Errorf("cache hit p50 %v not clearly below miss p50 %v", hit, miss)
	}
}

func TestNICWANRequestsDecryptAndReencrypt(t *testing.T) {
	cfg := DefaultConfig()
	src := kvsSource(15, 1.0, 1.0, 3) // all WAN
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	dec, enc := nic.IPSec.Counts()
	if dec != 15 {
		t.Errorf("decrypted %d, want 15", dec)
	}
	// Replies to WAN clients are re-encrypted on the way out.
	if enc != 15 {
		t.Errorf("encrypted %d, want 15", enc)
	}
	if nic.WireLat.Count != 15 {
		t.Errorf("wire responses = %d", nic.WireLat.Count)
	}
	// Encrypted messages make two RMT passes: >= 2 per request plus one
	// per response.
	if got := nic.RMTStats().Accepted; got < 45 {
		t.Errorf("RMT passes = %d, want >= 45", got)
	}
}

func TestNICSetsPopulateCacheAndHost(t *testing.T) {
	cfg := DefaultConfig()
	src := kvsSource(20, 0, 0, 5) // all SETs
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	_, _, sets := nic.Cache.Counts()
	if sets != 20 {
		t.Errorf("cache saw %d SETs", sets)
	}
	if nic.Cache.CacheLen() == 0 {
		t.Error("cache empty after SETs")
	}
	_, hostSets := nic.Host.Counts()
	if hostSets != 20 {
		t.Errorf("host absorbed %d SETs", hostSets)
	}
	if nic.Host.StoreLen() == 0 {
		t.Error("host store empty")
	}
	// SET acks left on the wire.
	if nic.WireLat.Count != 20 {
		t.Errorf("acks = %d", nic.WireLat.Count)
	}
}

func TestNICSetThenGetHitsCache(t *testing.T) {
	cfg := DefaultConfig()
	// Interleave: first SETs then GETs on the same key space, same
	// stream (GetRatio 0.5 over 64 keys with heavy skew makes hot keys
	// hit after their first SET).
	src := kvsSource(200, 0.5, 0, 21)
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 8_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	hits, _, _ := nic.Cache.Counts()
	if hits == 0 {
		t.Error("no GET ever hit a SET-populated cache entry")
	}
	if nic.WireLat.Count != 200 {
		t.Errorf("responses = %d, want 200", nic.WireLat.Count)
	}
}

func TestNICDropRule(t *testing.T) {
	cfg := DefaultConfig()
	src := kvsSource(10, 1.0, 0, 4)
	nic := NewNIC(cfg, []engine.Source{src})
	// Drop everything from 10.0.0.0/8 (the LAN clients).
	InstallDropRule(nic.Program, 10<<24, 8, 100)
	if !nic.RunQuiet(2000, 1_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	if nic.WireLat.Count != 0 || nic.HostLat.Count != 0 {
		t.Errorf("dropped traffic was served: wire=%d host=%d", nic.WireLat.Count, nic.HostLat.Count)
	}
	if nic.RMTStats().Dropped != 10 {
		t.Errorf("RMT drops = %d, want 10", nic.RMTStats().Dropped)
	}
}

func TestNICDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := DefaultConfig()
		src := kvsSource(50, 0.8, 0.3, 77)
		nic := NewNIC(cfg, []engine.Source{src})
		nic.RunQuiet(2000, 4_000_000)
		return nic.WireLat.Count, nic.WireLat.All.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
}

func TestNICInterruptCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCoalesce = 4
	src := kvsSource(16, 1.0, 0, 2)
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	notif, irqs := nic.PCIe.Counts()
	if notif != 16 {
		t.Errorf("notifications = %d, want 16", notif)
	}
	if irqs != 4 {
		t.Errorf("interrupts = %d, want 4 (coalesce 4)", irqs)
	}
}

func TestNICTwoPorts(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(port byte, seed uint64) engine.Source {
		return workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: uint16(port) + 1, Class: packet.ClassLatency,
			RateGbps: 5, FreqHz: 500e6,
			Keys: 32, GetRatio: 1.0, ValueBytes: 128,
			ClientNet: port, Count: 10, Seed: seed,
		})
	}
	nic := NewNIC(cfg, []engine.Source{mk(0, 1), mk(1, 2)})
	if !nic.RunQuiet(2000, 2_000_000) {
		t.Fatal("NIC did not go quiet")
	}
	// Responses return through the arrival port's subnet mapping.
	if nic.MACs[0].TxCount() != 10 || nic.MACs[1].TxCount() != 10 {
		t.Errorf("tx per port = %d/%d, want 10/10", nic.MACs[0].TxCount(), nic.MACs[1].TxCount())
	}
}

func TestNICConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config, *[]engine.Source){
		"too many sources": func(c *Config, s *[]engine.Source) {
			*s = make([]engine.Source, c.Ports+1)
		},
		"no pipelines": func(c *Config, s *[]engine.Source) { c.RMTPipelines = 0 },
		"tiny mesh": func(c *Config, s *[]engine.Source) {
			c.Mesh.Width, c.Mesh.Height = 2, 2
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			cfg := DefaultConfig()
			srcs := []engine.Source{}
			mutate(&cfg, &srcs)
			NewNIC(cfg, srcs)
		}()
	}
}

func TestNICSummaryRenders(t *testing.T) {
	cfg := DefaultConfig()
	src := kvsSource(5, 1.0, 0, 1)
	nic := NewNIC(cfg, []engine.Source{src})
	nic.RunQuiet(2000, 1_000_000)
	s := nic.Summary(nic.Now())
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}
