// Package core assembles PANIC NICs: it places RMT engines, offload
// engines, Ethernet MACs, and the DMA/PCIe engines on the on-chip mesh
// (Figure 3c of the paper), installs the RMT steering program that
// computes offload chains and slack values, and exposes end-to-end
// latency/throughput measurement.
package core

import (
	"fmt"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// Well-known engine addresses used by the canonical PANIC assembly and its
// RMT programs.
const (
	AddrRMTBase  packet.Addr = 1  // RMT pipeline i = AddrRMTBase + i
	AddrEthBase  packet.Addr = 16 // Ethernet port i = AddrEthBase + i
	AddrDMA      packet.Addr = 32
	AddrPCIe     packet.Addr = 33
	AddrIPSec    packet.Addr = 34
	AddrKVSCache packet.Addr = 35
	AddrRDMA     packet.Addr = 36
	AddrTxDMA    packet.Addr = 37
	AddrLSO      packet.Addr = 38
	AddrRateLim  packet.Addr = 39
	// Replica addresses for the self-healing control plane: IPSec replica i
	// is AddrIPSecAlt+i, DMA replica i is AddrDMAAlt+i (up to 4 each).
	AddrIPSecAlt packet.Addr = 40
	AddrDMAAlt   packet.Addr = 44
	AddrExtra    packet.Addr = 48 // first free address for extra offloads
	// AddrPuntBase is the first alias address the health monitor binds when
	// punting a failed engine's traffic to the host (each punt gets a fresh
	// alias so reintegration can rewrite it back unambiguously).
	AddrPuntBase packet.Addr = 64
)

// EngineAddrs maps canonical engine names to well-known addresses — the
// name table for fault plans (fault.ParsePlan) and CLI flags.
func EngineAddrs() map[string]packet.Addr {
	m := map[string]packet.Addr{
		"dma":       AddrDMA,
		"pcie":      AddrPCIe,
		"ipsec":     AddrIPSec,
		"kvscache":  AddrKVSCache,
		"cache":     AddrKVSCache,
		"rdma":      AddrRDMA,
		"txdma":     AddrTxDMA,
		"lso":       AddrLSO,
		"ratelimit": AddrRateLim,
	}
	for i := 0; i < 4; i++ {
		m[fmt.Sprintf("rmt%d", i)] = AddrRMTBase + packet.Addr(i)
		m[fmt.Sprintf("eth%d", i)] = AddrEthBase + packet.Addr(i)
		m[fmt.Sprintf("ipsec-alt%d", i)] = AddrIPSecAlt + packet.Addr(i)
		m[fmt.Sprintf("dma-alt%d", i)] = AddrDMAAlt + packet.Addr(i)
	}
	return m
}

// EngineName returns the canonical name for a well-known address, or its
// decimal form when unnamed.
func EngineName(addr packet.Addr) string {
	if addr == packet.AddrInvalid {
		return "-" // link faults carry no engine address
	}
	for name, a := range EngineAddrs() {
		if a == addr && name != "cache" { // prefer "kvscache" for 35
			return name
		}
	}
	return fmt.Sprintf("%d", addr)
}

// Builder places engines on a mesh and wires the shared route table. It is
// the low-level assembly API; NIC wraps it with the canonical layout.
type Builder struct {
	Kernel *sim.Kernel
	Mesh   *noc.Mesh
	Routes *engine.RouteTable
	rng    *sim.RNG
	used   map[noc.NodeID]bool

	// Tracer, when set before placements, gives every placed tile a
	// private trace buffer (nil = tracing off, zero cost).
	Tracer *trace.Tracer

	Tiles []*engine.Tile
	RMTs  []*engine.RMTTile
}

// NewBuilder creates a builder with a fresh kernel and mesh.
func NewBuilder(freqHz float64, meshCfg noc.MeshConfig, seed uint64) *Builder {
	k := sim.NewKernel(sim.Frequency(freqHz))
	m := noc.NewMesh(meshCfg)
	m.RegisterWith(k)
	return &Builder{
		Kernel: k,
		Mesh:   m,
		Routes: engine.NewRouteTable(),
		rng:    sim.NewRNG(seed),
		used:   make(map[noc.NodeID]bool),
	}
}

// claim marks a mesh node used.
func (b *Builder) claim(x, y int) noc.NodeID {
	node := b.Mesh.NodeAt(x, y)
	if b.used[node] {
		panic(fmt.Sprintf("core: node (%d,%d) already occupied", x, y))
	}
	b.used[node] = true
	return node
}

// NextFree returns an unoccupied mesh node, scanning row-major. It panics
// when the mesh is full.
func (b *Builder) NextFree() (int, int) {
	cfg := b.Mesh.Config()
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			if !b.used[b.Mesh.NodeAt(x, y)] {
				return x, y
			}
		}
	}
	panic("core: mesh is full")
}

// PlaceTile puts an offload engine at (x, y) with the given config
// overrides applied.
func (b *Builder) PlaceTile(addr packet.Addr, x, y int, eng engine.Engine, opts ...func(*engine.TileConfig)) *engine.Tile {
	node := b.claim(x, y)
	b.Routes.Bind(addr, node)
	cfg := engine.TileConfig{Addr: addr, Node: node, QueueCap: 64}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.Trace = b.traceBuf(addr)
	t := engine.NewTile(cfg, eng, b.Mesh, b.Routes, b.rng.Fork())
	b.Kernel.Register(t)
	// Event-engine wiring, valid in both kernel modes: the mesh pokes the
	// tile about deliveries and injection credits, and the tile may sleep
	// between its self-scheduled wake cycles.
	poke := b.Kernel.PokerFor(t)
	b.Mesh.SetNodeWaker(node, poke)
	t.EnableEventSleep(poke, b.Kernel.Clock())
	b.Tiles = append(b.Tiles, t)
	return t
}

// PlaceRMT puts an RMT engine at (x, y).
func (b *Builder) PlaceRMT(addr packet.Addr, x, y int, pipe *rmt.Pipeline, opts ...func(*engine.TileConfig)) *engine.RMTTile {
	node := b.claim(x, y)
	b.Routes.Bind(addr, node)
	cfg := engine.TileConfig{Addr: addr, Node: node, QueueCap: 64}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.Trace = b.traceBuf(addr)
	t := engine.NewRMTTile(cfg, pipe, b.Mesh, b.Routes)
	b.Kernel.Register(t)
	b.Mesh.SetNodeWaker(node, b.Kernel.PokerFor(t))
	t.EnableEventSleep()
	b.RMTs = append(b.RMTs, t)
	return t
}

// traceBuf names the placed engine's trace location and allocates its
// private span buffer. Placement order fixes buffer-creation order, which
// fixes the trace stream's drain order (the determinism contract).
func (b *Builder) traceBuf(addr packet.Addr) *trace.Buffer {
	if b.Tracer == nil {
		return nil
	}
	name := EngineName(addr)
	b.Tracer.NameLoc(trace.LocEngine, uint32(addr), name)
	return b.Tracer.Buffer(name)
}

// TileByAddr returns the placed tile with the given address, or nil.
func (b *Builder) TileByAddr(addr packet.Addr) *engine.Tile {
	for _, t := range b.Tiles {
		if t.Addr() == addr {
			return t
		}
	}
	return nil
}
