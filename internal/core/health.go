package core

import (
	"fmt"
	"strings"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/trace"
)

// HealthConfig parameterizes the self-healing control plane: a periodic
// health monitor that watches per-tile liveness, declares failure after a
// detection window, and recovers by reprogramming RMT steering toward a
// replica, punting to the host when no replica exists, and draining and
// reintegrating the failed tile.
type HealthConfig struct {
	// Enable turns the monitor on. Off by default: the baseline NIC is
	// byte-identical with and without the health subsystem compiled in.
	Enable bool
	// CheckPeriod is how often (cycles) the monitor samples tile liveness.
	// 0 means 64.
	CheckPeriod uint64
	// DetectWindow is how long (cycles) a tile must be stalled — work
	// queued or in service but zero completions — before the monitor
	// declares it failed. 0 means 2048.
	DetectWindow uint64
	// RecoverProgress is how many completions the failover target must
	// make before the monitor declares service recovered. 0 means 1.
	RecoverProgress uint64
	// NoDrain disables the drain-and-reset of a failed tile's queue.
	NoDrain bool
	// NoReintegrate disables restoring steering to a healed tile.
	NoReintegrate bool
	// TenantDomains scopes failover per engine: when a listed engine fails,
	// only the named tenants' chain entries (table entries pinning
	// meta.tenant) are repointed, one rewrite and one log event per tenant,
	// and shared steering keeps its target. Engines without an entry fail
	// over globally as before. Reintegration honors the same scoping.
	TenantDomains map[packet.Addr][]uint16
}

// DefaultHealthConfig returns the enabled defaults.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{Enable: true, CheckPeriod: 64, DetectWindow: 2048, RecoverProgress: 1}
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 64
	}
	if c.DetectWindow == 0 {
		c.DetectWindow = 2048
	}
	if c.RecoverProgress == 0 {
		c.RecoverProgress = 1
	}
	return c
}

// FailureEvent is one entry in the structured failure log.
type FailureEvent struct {
	// Cycle is when the event was observed.
	Cycle uint64
	// Kind is the event class: fault-injected, fault-lifted (from the
	// fault plan), detected, rerouted, punted, unrecoverable, drained,
	// recovered, reintegrated (from the health monitor).
	Kind string
	// Engine is the tile the event concerns.
	Engine packet.Addr
	// Tenant is the tenant a tenant-scoped action concerned, valid only
	// when Tenanted (tenant-domain reroutes log one event per tenant).
	Tenant   uint16
	Tenanted bool
	// Target is where steering points after a rerouted, punted, or
	// reintegrated action (the standby, the punt alias, or the restored
	// original); AddrInvalid otherwise. The invariant monitor's
	// health-legality check audits reroute targets through it.
	Target packet.Addr
	// Link marks fault-injected/fault-lifted events that concern a mesh
	// link rather than an engine (Engine is meaningless on them).
	Link bool
	// Detail is a human-readable elaboration.
	Detail string
}

// EventLog accumulates failure events in simulation order. It is
// deterministic: two runs with the same seed and fault plan produce
// byte-identical String() output.
type EventLog struct {
	events []FailureEvent
	tb     *trace.Buffer
}

// ctlCodes maps failure-event kinds to KindControl span location codes
// (trace.LocControl). Code 0 is reserved for unknown kinds.
var ctlCodes = map[string]uint32{
	"fault-injected": 1,
	"fault-lifted":   2,
	"detected":       3,
	"rerouted":       4,
	"punted":         5,
	"drained":        6,
	"recovered":      7,
	"reintegrated":   8,
	"unrecoverable":  9,
}

// AttachTracer mirrors the log into the trace as control spans on a
// dedicated buffer. Events are appended only from the sequential event and
// serial phases (fault plans and the health monitor), so one shared buffer
// keeps the single-writer rule.
func (l *EventLog) AttachTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	tr.NameLoc(trace.LocControl, 0, "control")
	for kind, code := range ctlCodes {
		tr.NameLoc(trace.LocControl, code, kind)
	}
	l.tb = tr.Buffer("control")
}

// Append records an event.
func (l *EventLog) Append(e FailureEvent) {
	l.events = append(l.events, e)
	if l.tb != nil {
		sp := trace.Span{
			Kind: trace.KindControl, LocKind: trace.LocControl,
			Loc: ctlCodes[e.Kind], Start: e.Cycle, End: e.Cycle,
			A: uint64(e.Engine),
		}
		if e.Tenanted {
			sp.Tenant = e.Tenant
		}
		l.tb.Emit(sp)
	}
}

// Events returns the recorded events.
func (l *EventLog) Events() []FailureEvent { return l.events }

// String renders the log, one event per line.
func (l *EventLog) String() string {
	var sb strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&sb, "cycle %8d  %-14s %-10s %s\n", e.Cycle, e.Kind, EngineName(e.Engine), e.Detail)
	}
	return sb.String()
}

// MTTR returns the mean-time-to-recovery for the given engine: cycles from
// the first fault-injected event (or, absent one, the first detection) to
// the first recovered event after it. ok is false when the log does not
// contain a completed failure episode for the engine.
func (l *EventLog) MTTR(addr packet.Addr) (cycles uint64, ok bool) {
	var start uint64
	haveStart := false
	for _, e := range l.events {
		if e.Engine != addr {
			continue
		}
		switch e.Kind {
		case "fault-injected":
			if !haveStart {
				start, haveStart = e.Cycle, true
			}
		case "detected":
			if !haveStart {
				start, haveStart = e.Cycle, true
			}
		case "recovered":
			if haveStart {
				return e.Cycle - start, true
			}
		}
	}
	return 0, false
}

type watchState int

const (
	watchHealthy watchState = iota
	watchFailed
	watchRecovered
)

// watch is the monitor's per-tile state machine.
type watch struct {
	tile     *engine.Tile
	standbys []packet.Addr // failover candidates in preference order

	state         watchState
	lastProcessed uint64
	stalledSince  uint64
	stalled       bool

	// Failure episode state.
	reroutedTo   packet.Addr  // where steering now points (replica or punt alias)
	targetTile   *engine.Tile // tile serving the rerouted traffic
	targetBase   uint64       // target's Processed at reroute time
	faultyAtFail bool         // tile had an injected fault when declared failed
	punted       bool
}

// HealthMonitor is the self-healing control plane. It implements
// sim.Ticker and must be registered with RegisterSerial, after every tile:
// each check samples the cycle's final state, and its probes and recovery
// actions read and rewrite state owned by many tiles (steering tables,
// queue resets), which must never run concurrently with the Eval shards;
// NewNIC does this. All recovery actions go through the same control
// interfaces real hardware exposes: RMT table rewrites, route-table binds,
// and tile resets.
type HealthMonitor struct {
	cfg      HealthConfig
	b        *Builder
	prog     *rmt.Program
	log      *EventLog
	watches  []*watch
	byAddr   map[packet.Addr]*watch
	nextPunt packet.Addr
	domains  map[packet.Addr][]uint16
}

// NewHealthMonitor builds a monitor watching every engine tile placed so
// far. Standby groups are declared afterwards with SetStandbys.
func NewHealthMonitor(cfg HealthConfig, b *Builder, prog *rmt.Program, log *EventLog) *HealthMonitor {
	m := &HealthMonitor{
		cfg:      cfg.withDefaults(),
		b:        b,
		prog:     prog,
		log:      log,
		byAddr:   make(map[packet.Addr]*watch),
		nextPunt: AddrPuntBase,
		domains:  cfg.TenantDomains,
	}
	for _, t := range b.Tiles {
		w := &watch{tile: t}
		m.watches = append(m.watches, w)
		m.byAddr[t.Addr()] = w
	}
	return m
}

// SetStandbys declares the failover candidates for an engine, in
// preference order (e.g. the other members of its replica group).
func (m *HealthMonitor) SetStandbys(addr packet.Addr, standbys []packet.Addr) {
	w := m.byAddr[addr]
	if w == nil {
		panic(fmt.Sprintf("core: SetStandbys for unwatched engine %d", addr))
	}
	w.standbys = standbys
}

// NextWork implements sim.Quiescer: the monitor acts only on multiples of
// CheckPeriod, and those check cycles are never skippable — the watchdog's
// stall clock must observe quiet periods exactly as a stepped run would.
func (m *HealthMonitor) NextWork(now uint64) (uint64, bool) {
	if now%m.cfg.CheckPeriod == 0 {
		return now, false
	}
	return now + (m.cfg.CheckPeriod - now%m.cfg.CheckPeriod), false
}

// Tick implements sim.Ticker.
func (m *HealthMonitor) Tick(cycle uint64) {
	if cycle%m.cfg.CheckPeriod != 0 {
		return
	}
	for _, w := range m.watches {
		switch w.state {
		case watchHealthy:
			m.checkLiveness(w, cycle)
		case watchFailed:
			if m.tryReintegrate(w, cycle) {
				continue
			}
			m.redrain(w, cycle)
			m.checkRecovery(w, cycle)
		case watchRecovered:
			if m.tryReintegrate(w, cycle) {
				continue
			}
			m.redrain(w, cycle)
		}
	}
}

// checkLiveness advances the stall watchdog: a tile with work pending
// (queued or in service) but no completions since the last check is
// stalled; a stall outlasting DetectWindow is a failure. A wedged tile
// with an empty queue and nothing in service is indistinguishable from an
// idle one and is (correctly) not flagged — there is no service to heal.
func (m *HealthMonitor) checkLiveness(w *watch, cycle uint64) {
	st := w.tile.Stats()
	stalledNow := (w.tile.QueueLen() > 0 || w.tile.Busy()) && st.Processed == w.lastProcessed
	w.lastProcessed = st.Processed
	if !stalledNow {
		w.stalled = false
		return
	}
	if !w.stalled {
		w.stalled = true
		w.stalledSince = cycle
		return
	}
	if cycle-w.stalledSince >= m.cfg.DetectWindow {
		m.fail(w, cycle)
	}
}

// fail declares the tile failed and executes recovery: reroute to the
// first healthy standby, else punt to the host, then drain the wedge.
func (m *HealthMonitor) fail(w *watch, cycle uint64) {
	addr := w.tile.Addr()
	w.state = watchFailed
	w.stalled = false
	w.faultyAtFail = !w.tile.FaultState().Clean()
	m.log.Append(FailureEvent{Cycle: cycle, Kind: "detected", Engine: addr,
		Detail: fmt.Sprintf("stalled since cycle %d (queue=%d busy=%v)", w.stalledSince, w.tile.QueueLen(), w.tile.Busy())})

	if target, ok := m.pickStandby(w); ok {
		w.reroutedTo = target
		w.targetTile = m.b.TileByAddr(target)
		w.targetBase = w.targetTile.Stats().Processed
		w.punted = false
		for _, r := range m.rewriteSteering(addr, addr, target) {
			m.log.Append(FailureEvent{Cycle: cycle, Kind: "rerouted", Engine: addr,
				Tenant: r.tenant, Tenanted: r.tenanted, Target: target,
				Detail: r.prefix() + fmt.Sprintf("steering -> %s (%d table actions rewritten)", EngineName(target), r.n)})
		}
	} else if alias, ok := m.bindPuntAlias(addr); ok {
		w.reroutedTo = alias
		w.targetTile = m.b.TileByAddr(AddrDMA)
		w.targetBase = w.targetTile.Stats().Processed
		w.punted = true
		for _, r := range m.rewriteSteering(addr, addr, alias) {
			m.log.Append(FailureEvent{Cycle: cycle, Kind: "punted", Engine: addr,
				Tenant: r.tenant, Tenanted: r.tenanted, Target: alias,
				Detail: r.prefix() + fmt.Sprintf("steering -> host via DMA alias %d (%d table actions rewritten)", alias, r.n)})
		}
	} else {
		w.reroutedTo = packet.AddrInvalid
		w.targetTile = nil
		m.log.Append(FailureEvent{Cycle: cycle, Kind: "unrecoverable", Engine: addr,
			Detail: "no healthy standby and no DMA path to punt to"})
	}
	m.redrain(w, cycle)
}

// rewriteResult is one steering rewrite performed during failover or
// reintegration: global (tenanted false) or scoped to a single tenant.
type rewriteResult struct {
	tenant   uint16
	tenanted bool
	n        int
}

// prefix returns the tenant-qualifying log-detail prefix.
func (r rewriteResult) prefix() string {
	if !r.tenanted {
		return ""
	}
	return fmt.Sprintf("tenant %d ", r.tenant)
}

// rewriteSteering repoints chain hops from old to new. When the failed
// engine has a tenant domain declared, each domain tenant gets its own
// scoped rewrite (only entries pinning meta.tenant to it move) and the
// results come back one per tenant; otherwise a single global rewrite.
func (m *HealthMonitor) rewriteSteering(failed, old, new packet.Addr) []rewriteResult {
	tenants := m.domains[failed]
	if len(tenants) == 0 {
		return []rewriteResult{{n: m.prog.RewriteEngine(old, new)}}
	}
	out := make([]rewriteResult, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, rewriteResult{tenant: t, tenanted: true,
			n: m.prog.RewriteEngineTenant(old, new, rmt.FieldMetaTenant, uint64(t))})
	}
	return out
}

// pickStandby returns the first standby that is a safe failover target:
// watched-healthy, no injected fault, not mid-stall, and not behind a
// faulted mesh link. The last two are what prevent the ping-pong failure
// mode: a replica that is itself degraded by an active fault plan — its
// watchdog clock running but detection not yet expired, or its links
// severed so traffic steered at it blackholes — must not receive the
// failed engine's traffic only to fail over again moments later. With no
// safe standby the caller falls through to the punt-to-host path.
func (m *HealthMonitor) pickStandby(w *watch) (packet.Addr, bool) {
	for _, s := range w.standbys {
		sw := m.byAddr[s]
		if sw == nil || sw.state != watchHealthy || sw.stalled {
			continue
		}
		if !sw.tile.FaultState().Clean() {
			continue
		}
		if m.b.Mesh.NodeLinkFaulted(sw.tile.Node()) {
			continue
		}
		return s, true
	}
	return packet.AddrInvalid, false
}

// bindPuntAlias binds a fresh alias address to the DMA engine's node —
// the Fig 2c degraded mode where the failed offload's traffic goes to host
// software instead. A fresh alias per punt keeps reintegration unambiguous
// (rewriting the alias back cannot touch legitimate DMA hops).
func (m *HealthMonitor) bindPuntAlias(failed packet.Addr) (packet.Addr, bool) {
	if failed == AddrDMA || !m.b.Routes.Has(AddrDMA) {
		return packet.AddrInvalid, false
	}
	dw := m.byAddr[AddrDMA]
	if dw != nil && dw.state != watchHealthy {
		return packet.AddrInvalid, false
	}
	alias := m.nextPunt
	m.nextPunt++
	m.b.Routes.Bind(alias, m.b.Routes.Lookup(AddrDMA))
	return alias, true
}

// redrain evicts queued/in-service messages from a failed tile toward its
// default route (the RMT pipelines), where they are reclassified under the
// rewritten steering tables and follow the failover path. Stragglers that
// were already in the NoC keep arriving at the failed tile, so this runs
// every check while the episode lasts.
func (m *HealthMonitor) redrain(w *watch, cycle uint64) {
	if m.cfg.NoDrain {
		return
	}
	if n := w.tile.Reset(packet.AddrInvalid); n > 0 {
		m.log.Append(FailureEvent{Cycle: cycle, Kind: "drained", Engine: w.tile.Addr(),
			Detail: fmt.Sprintf("%d messages evicted to reclassification", n)})
	}
}

// checkRecovery declares service recovered once the failover target has
// made RecoverProgress completions since the reroute. For a punted engine
// the DMA tile's progress is the proxy: the host is absorbing the traffic.
func (m *HealthMonitor) checkRecovery(w *watch, cycle uint64) {
	if w.targetTile == nil {
		return
	}
	if w.targetTile.Stats().Processed-w.targetBase < m.cfg.RecoverProgress {
		return
	}
	w.state = watchRecovered
	m.log.Append(FailureEvent{Cycle: cycle, Kind: "recovered", Engine: w.tile.Addr(),
		Detail: fmt.Sprintf("%s made %d completions since reroute", EngineName(w.targetTile.Addr()), w.targetTile.Stats().Processed-w.targetBase)})
}

// tryReintegrate restores steering to the original tile once its injected
// fault has been lifted, returning the watch to healthy. Only episodes
// that began with an injected fault reintegrate automatically — a stall
// with no known fault has no "fault cleared" edge to key on.
func (m *HealthMonitor) tryReintegrate(w *watch, cycle uint64) bool {
	if m.cfg.NoReintegrate || !w.faultyAtFail || w.reroutedTo == packet.AddrInvalid {
		return false
	}
	if !w.tile.FaultState().Clean() {
		return false
	}
	addr := w.tile.Addr()
	for _, r := range m.rewriteSteering(addr, w.reroutedTo, addr) {
		m.log.Append(FailureEvent{Cycle: cycle, Kind: "reintegrated", Engine: addr,
			Tenant: r.tenant, Tenanted: r.tenanted, Target: addr,
			Detail: r.prefix() + fmt.Sprintf("steering restored from %s (%d table actions rewritten)", EngineName(w.reroutedTo), r.n)})
	}
	w.state = watchHealthy
	w.stalled = false
	w.lastProcessed = w.tile.Stats().Processed
	w.reroutedTo = packet.AddrInvalid
	w.targetTile = nil
	w.faultyAtFail = false
	w.punted = false
	return true
}
