package core

import (
	"fmt"
	"sort"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/trace"
)

// Config parameterizes a PANIC NIC.
type Config struct {
	// FreqHz is the NIC clock (the paper's operating point is 500 MHz).
	FreqHz float64
	// LineRateGbps and Ports describe the Ethernet side.
	LineRateGbps float64
	Ports        int
	// Mesh is the on-chip network geometry (Table 3's rows are 6×6 and
	// 8×8 at 64 or 128 bits).
	Mesh noc.MeshConfig
	// RMTPipelines is the number of parallel heavyweight RMT engines
	// (§4.2: throughput is FreqHz × RMTPipelines packets/s).
	RMTPipelines int
	// QueueCap is each engine's scheduling-queue capacity.
	QueueCap int
	// Policy picks lossless backpressure or priority-drop overflow.
	Policy sched.Policy
	// Rank orders scheduling queues (nil = LSTF on chain slack).
	Rank sched.RankFunc
	// TenantWeights enables weighted-LSTF scheduling: each offload queue
	// scales a message's slack inversely to its tenant's weight and charges
	// deficit-style rate credits, so an aggressor tenant cannot starve a
	// victim's slack budget. Ignored when Rank is set explicitly. Every
	// tile gets its own rank instance (credit state is per queue, as per-
	// engine hardware counters would be).
	TenantWeights map[uint16]uint64
	// Tenants lists the tenants the RMT program installs per-tenant chain
	// entries for (classified from the wire: KVS header tenant or ESP SPI).
	// Empty defaults to the sorted TenantWeights keys.
	Tenants []uint16
	// TenantQuantumBytes is the per-weight-unit byte credit each tenant
	// earns every 64-cycle refill period (0 = the sched package default,
	// 1024 B ≈ 64 Gbps at 500 MHz). Set it to a tenant's fair share of the
	// bottleneck link so an over-budget aggressor exhausts its credit and
	// ranks behind in-budget tenants even after its slack has aged away.
	TenantQuantumBytes uint64
	// Program configures the steering program (Ports is overridden).
	Program ProgramConfig
	// CacheCapacity is the on-NIC KVS cache size in keys (0 disables).
	CacheCapacity int
	// IPSec configures the crypto engine datapath.
	IPSec engine.IPSecConfig
	// PCIeGbps, DMALatency, and DMAJitter model the host connection.
	PCIeGbps              float64
	DMALatency, DMAJitter uint64
	// HostCycles and HostValueBytes model the host KVS software.
	HostCycles     uint64
	HostValueBytes uint32
	// InterruptCoalesce is the PCIe engine's coalescing count.
	InterruptCoalesce int
	// RateLimits installs per-tenant rate limits (Gbps) on the SENIC-style
	// rate-limiter engine; non-empty enables the engine and prepends it to
	// every KVS chain (sets Program.EnableRateLimiter).
	RateLimits map[uint16]float64
	// LSO, when set, places a TCP segmentation engine and chains
	// host-originated TCP sends through it (sets Program.EnableLSO).
	LSO *engine.LSOConfig
	// IPSecReplicas and DMAReplicas are the TOTAL instance counts for the
	// crypto and RX-DMA engines (0 or 1 = primary only, max 5). Extra
	// instances are hot standbys at AddrIPSecAlt+i / AddrDMAAlt+i that the
	// health monitor fails over to by rewriting RMT steering.
	IPSecReplicas int
	DMAReplicas   int
	// Health configures the self-healing control plane (disabled unless
	// Health.Enable).
	Health HealthConfig
	// FaultPlan, when set, is armed onto the kernel before the clock
	// starts; its events feed the NIC's failure-event log.
	FaultPlan *fault.Plan
	// CompactPlacement clusters all engines into the mesh's top-left
	// corner instead of spreading them (the placement ablation for the
	// paper's §6 question "How should different engines be placed?").
	// Spread placement is the default and performs much better: corner
	// placement concentrates every flow onto a few links.
	CompactPlacement bool
	// Trace records per-engine visits on messages.
	Trace bool
	// Tracer, when non-nil, enables cycle-accurate span tracing: every
	// placed tile, every mesh router, the terminal sinks, and the failure
	// log get private trace buffers, and the tracer is registered on the
	// kernel as the LAST committer so each cycle's spans drain after all
	// staged sinks flush. Nil costs nothing on the hot path.
	Tracer *trace.Tracer
	Seed   uint64
	// NoFlowCache disables the RMT pipelines' per-flow decision caches
	// (the ablation baseline: every message pays the full Go-side parse
	// and table walk). Simulation results are bit-identical either way —
	// the cache replays verdicts and register side effects exactly.
	NoFlowCache bool
	// HeapSchedQueue backs every scheduling queue with the reference
	// container/heap PIFO instead of the bucketed calendar queue (the
	// scheduler ablation baseline; decisions are identical).
	HeapSchedQueue bool
	// Invariants, when non-nil, arms the runtime invariant monitor: every
	// sampling interval the kernel's end-of-cycle barrier audits message
	// conservation (per tile and per tenant), queue and credit bounds,
	// WLSTF credit conservation, flow-cache coherence (sampled cache hits
	// shadow-executed against the full table walk), health-monitor action
	// legality, and trace-span well-formedness (see ROBUSTNESS.md). The
	// simulation stream is bit-identical with the monitor on or off; nil
	// (the default) registers nothing and costs nothing.
	Invariants *invariant.Config
	// RackTap, when non-nil, inspects every frame reaching wire egress
	// before it is counted as a local delivery; returning true consumes
	// the message. The fleet layer uses it to pick rack-destined frames
	// (IP dst in 172.0.0.0/8, another NIC's subnet) off the wire and walk
	// them through the ToR model. The tap runs inside the MACs' staged
	// sinks during the sequential Commit phase, so it needs no locking
	// and fires in deterministic (port, delivery) order. Nil costs
	// nothing.
	RackTap func(m *packet.Message, now uint64) bool
	// Workers is the kernel's Eval worker-pool size: 0 or 1 runs the
	// classic sequential loop; N > 1 shards the Eval phase across N
	// goroutines. The simulation result is bit-identical either way.
	Workers int
	// FastForward lets the kernel jump the clock over provably idle cycles
	// (every component quiescent, no event due). Off by default.
	FastForward bool
	// NoEventEngine disables the kernel's event-driven loaded path and
	// ticks every component every cycle (the oracle loop). The simulation
	// result is bit-identical either way — event mode only skips ticks that
	// provably change nothing and defers bulk counters it can reconstruct —
	// so this is an ablation/escape hatch, not a semantic knob.
	NoEventEngine bool
}

// DefaultConfig returns the canonical PANIC operating point: a two-port
// 100 Gbps NIC at 500 MHz with two RMT pipelines on a 6×6 mesh of 128-bit
// channels (the paper's §4.2 headline configuration and Table 3 row 3).
func DefaultConfig() Config {
	mesh := noc.DefaultMeshConfig()
	mesh.FlitWidthBits = 128
	return Config{
		FreqHz:            500e6,
		LineRateGbps:      100,
		Ports:             2,
		Mesh:              mesh,
		RMTPipelines:      2,
		QueueCap:          64,
		Policy:            sched.DropLowestPriority,
		Program:           DefaultProgramConfig(2),
		CacheCapacity:     1024,
		IPSec:             engine.IPSecConfig{BytesPerCycle: 16, SetupCycles: 20},
		PCIeGbps:          256,
		DMALatency:        150, // ~300 ns host round trip at 500 MHz
		DMAJitter:         50,
		HostCycles:        1000, // ~2 µs host software path
		HostValueBytes:    512,
		InterruptCoalesce: 8,
		Seed:              1,
	}
}

// NIC is an assembled PANIC NIC.
type NIC struct {
	Cfg     Config
	Builder *Builder
	Program *rmt.Program

	MACs     []*engine.EthernetMAC
	macTiles []*engine.Tile
	LSOEng   *engine.LSOEngine
	RateLim  *engine.RateLimiterEngine
	DMA      *engine.DMAEngine
	TxDMA    *engine.TxDMAEngine
	PCIe     *engine.PCIeEngine
	IPSec    *engine.IPSecEngine
	Cache    *engine.KVSCacheEngine
	RDMA     *engine.RDMAEngine
	Host     *KVSHost

	// IPSecAlts and DMAAlts are the hot-standby replica engines (empty
	// unless Cfg.IPSecReplicas / Cfg.DMAReplicas > 1).
	IPSecAlts []*engine.IPSecEngine
	DMAAlts   []*engine.DMAEngine
	// Events is the structured failure log (fault injections plus health
	// monitor actions). Always non-nil.
	Events *EventLog
	// Monitor is the self-healing control plane (nil unless
	// Cfg.Health.Enable).
	Monitor *HealthMonitor
	// Invar is the runtime invariant monitor (nil unless Cfg.Invariants).
	Invar *invariant.Monitor
	// wlstfs are the per-queue weighted-LSTF rank instances, retained so
	// the invariant monitor can audit their credit ledgers.
	wlstfs []*sched.WLSTF

	// HostLat histograms request latency to host delivery; WireLat
	// histograms request-to-response latency at wire egress.
	HostLat *LatencyCollector
	WireLat *LatencyCollector
	// Drops counts messages shed by scheduling queues.
	Drops *stats.Counter
}

// NewNIC assembles a PANIC NIC. sources[i] feeds Ethernet port i and may
// be nil for a TX-only port; len(sources) must not exceed cfg.Ports.
func NewNIC(cfg Config, sources []engine.Source) *NIC {
	if cfg.Ports < 1 || len(sources) > cfg.Ports {
		panic(fmt.Sprintf("core: %d sources for %d ports", len(sources), cfg.Ports))
	}
	if cfg.RMTPipelines < 1 {
		panic("core: need at least one RMT pipeline")
	}
	w, h := cfg.Mesh.Width, cfg.Mesh.Height
	if cfg.Ports > h || cfg.RMTPipelines > h || w < 4 || h < 3 {
		panic(fmt.Sprintf("core: %dx%d mesh too small for %d ports and %d pipelines", w, h, cfg.Ports, cfg.RMTPipelines))
	}
	cfg.Program.Ports = cfg.Ports
	cfg.Program.EnableRateLimiter = len(cfg.RateLimits) > 0
	if cfg.Program.EnableRateLimiter {
		tenants := make([]uint16, 0, len(cfg.RateLimits))
		for t := range cfg.RateLimits {
			tenants = append(tenants, t)
		}
		sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
		cfg.Program.RateLimitTenants = tenants
	}
	cfg.Program.EnableLSO = cfg.LSO != nil
	if len(cfg.Tenants) == 0 && len(cfg.TenantWeights) > 0 {
		for t := range cfg.TenantWeights {
			cfg.Tenants = append(cfg.Tenants, t)
		}
		sort.Slice(cfg.Tenants, func(i, j int) bool { return cfg.Tenants[i] < cfg.Tenants[j] })
	}
	cfg.Program.Tenants = cfg.Tenants

	n := &NIC{
		Cfg:     cfg,
		HostLat: NewLatencyCollector(),
		WireLat: NewLatencyCollector(),
		Drops:   &stats.Counter{},
	}
	b := NewBuilder(cfg.FreqHz, cfg.Mesh, cfg.Seed)
	b.Kernel.SetWorkers(cfg.Workers)
	b.Kernel.SetFastForward(cfg.FastForward)
	b.Kernel.SetEventDriven(!cfg.NoEventEngine)
	b.Tracer = cfg.Tracer
	b.Mesh.AttachTracer(cfg.Tracer)
	n.Builder = b
	n.Program = BuildProgram(cfg.Program)
	n.Host = NewKVSHost(cfg.HostCycles, cfg.HostValueBytes)

	// The drop counter is shared by every tile but atomic: increments
	// commute, so concurrent Eval shards reach the same final count as
	// sequential ticking.
	dropSink := engine.SinkFunc(func(*packet.Message, uint64) { n.Drops.Inc() })
	// Terminal-sink Deliver spans share one buffer: StagedSink targets run
	// during the sequential Commit phase, so the single writer rule holds.
	var sinksBuf *trace.Buffer
	if cfg.Tracer != nil {
		cfg.Tracer.NameLoc(trace.LocSink, sinkHost, "host")
		cfg.Tracer.NameLoc(trace.LocSink, sinkWire, "wire")
		sinksBuf = cfg.Tracer.Buffer("sinks")
	}
	wrapSink := func(inner engine.Sink, loc uint32) engine.Sink {
		if sinksBuf == nil {
			return inner
		}
		return tracedSink{inner: inner, buf: sinksBuf, loc: loc}
	}
	common := func(c *engine.TileConfig) {
		c.QueueCap = cfg.QueueCap
		c.Policy = cfg.Policy
		c.HeapSchedQueue = cfg.HeapSchedQueue
		c.Rank = cfg.Rank
		if c.Rank == nil && len(cfg.TenantWeights) > 0 {
			// Each tile gets its own credit state; the instance is retained
			// so the invariant monitor can audit its ledger.
			w := sched.NewWLSTF(sched.WLSTFConfig{
				Weights:      cfg.TenantWeights,
				QuantumBytes: cfg.TenantQuantumBytes,
			})
			n.wlstfs = append(n.wlstfs, w)
			c.Rank = w.Rank
		}
		c.TraceVisits = cfg.Trace
	}
	// Chainless traffic (fresh ingress, reinjections, host responses) is
	// sprayed round-robin across the parallel RMT pipelines, as ingress
	// hardware would load-balance them.
	spread := make([]packet.Addr, cfg.RMTPipelines)
	for i := range spread {
		spread[i] = AddrRMTBase + packet.Addr(i)
	}

	// Placement spreads engines over the whole mesh (Figure 3c): MACs on
	// the west edge, RMT pipelines through the center column, host
	// interface on the east edge, offloads staggered in between, so no
	// mesh row carries every flow.
	midY := h / 2
	ethY := func(p int) int { return clampY(midY-cfg.Ports/2+p, h) }
	rmtY := func(i int) int { return clampY(1+2*i, h) }
	if cfg.CompactPlacement {
		midY = 0
		ethY = func(p int) int { return p }
		rmtY = func(i int) int { return i }
	}

	// West edge: Ethernet MACs (fabric edge, external interfaces). The wire
	// collector is shared by every port, so each MAC writes through its own
	// StagedSink, registered right after its tile: deliveries buffer
	// privately during Eval and flush at Commit in tile order, keeping the
	// collector identical across worker counts.
	for p := 0; p < cfg.Ports; p++ {
		var src engine.Source
		if p < len(sources) {
			src = sources[p]
		}
		// The rack tap wraps outside the traced sink: a frame consumed by
		// the fleet's ToR path is in flight in the rack, not delivered
		// here, so it emits no local Deliver span and never reaches the
		// wire collector.
		var wireTarget engine.Sink = wrapSink(n.WireLat, sinkWire)
		if cfg.RackTap != nil {
			wireTarget = tapSink{tap: cfg.RackTap, inner: wireTarget}
		}
		wireSink := engine.NewStagedSink(wireTarget)
		mac := engine.NewEthernetMAC(engine.MACConfig{
			Port: p, LineRateGbps: cfg.LineRateGbps, FreqHz: cfg.FreqHz,
		}, src, wireSink)
		n.MACs = append(n.MACs, mac)
		tile := b.PlaceTile(AddrEthBase+packet.Addr(p), 0, ethY(p), mac, common,
			func(c *engine.TileConfig) { c.DefaultSpread = spread })
		b.Kernel.Register(wireSink)
		tile.DropSink = dropSink
		n.macTiles = append(n.macTiles, tile)
	}

	// Center column: the heavyweight RMT pipelines, staggered vertically.
	rmtX := w / 2
	if cfg.CompactPlacement {
		rmtX = 1
	}
	for i := 0; i < cfg.RMTPipelines; i++ {
		pipe := rmt.NewPipeline(n.Program, 1, 1)
		if !cfg.NoFlowCache {
			// Each pipeline gets a private cache (no shared mutable state
			// under the parallel kernel); verdicts are identical either way.
			pipe.EnableFlowCache()
		}
		b.PlaceRMT(AddrRMTBase+packet.Addr(i), rmtX, rmtY(i), pipe, common,
			func(c *engine.TileConfig) { c.Rank = nil }) // FIFO admission
	}

	// Right edge: DMA and PCIe (the host interface). The host collector and
	// KVS host are shared by the primary DMA and its replicas, so each
	// instance gets its own StagedSink (same scheme as the MACs above).
	hostSink := engine.SinkFunc(func(m *packet.Message, now uint64) {
		n.HostLat.Deliver(m, now)
		n.Host.Absorb(m, now)
	})
	dmaSink := engine.NewStagedSink(wrapSink(hostSink, sinkHost))
	n.DMA = engine.NewDMAEngine(engine.DMAConfig{
		PCIeGbps: cfg.PCIeGbps, FreqHz: cfg.FreqHz,
		BaseLatencyCycles: cfg.DMALatency, JitterCycles: cfg.DMAJitter,
		NotifyAddr: AddrPCIe,
	}, dmaSink, nil)
	dmaY := clampY(midY, h)
	if cfg.CompactPlacement {
		dmaY = 0
	}
	dmaTile := b.PlaceTile(AddrDMA, w-1, dmaY, n.DMA, common,
		func(c *engine.TileConfig) { c.DefaultSpread = spread })
	b.Kernel.Register(dmaSink)
	dmaTile.DropSink = dropSink

	coalesce := cfg.InterruptCoalesce
	if coalesce < 1 {
		coalesce = 1
	}
	n.PCIe = engine.NewPCIeEngine(engine.PCIeConfig{CoalesceCount: coalesce, InterruptCycles: 4})
	pcieY := clampY(midY-1, h)
	if cfg.CompactPlacement {
		pcieY = 1
	}
	b.PlaceTile(AddrPCIe, w-1, pcieY, n.PCIe, common)

	// TX-side DMA: fetches host responses independently of the receive
	// path (split RX/TX DMA, as on real NICs).
	n.TxDMA = engine.NewTxDMAEngine(cfg.PCIeGbps, cfg.FreqHz, n.Host)
	txY := clampY(midY+1, h)
	if cfg.CompactPlacement {
		txY = 2
	}
	txTile := b.PlaceTile(AddrTxDMA, w-1, txY, n.TxDMA, common,
		func(c *engine.TileConfig) { c.DefaultSpread = spread })
	// The RX-DMA staged sinks feed the KVS host's TX queue, which the
	// TX-DMA tile polls: each flush pokes that tile so a sleeping TX side
	// sees the new response work (the flush happens at Commit, after the
	// tile's wake schedule for the cycle was already declared).
	dmaSink.SetWaker(b.Kernel.PokerFor(txTile))

	// Interior: the offload engines.
	n.IPSec = engine.NewIPSecEngine(cfg.IPSec)
	ipsecX, ipsecY := clampFree(b, 1, h-2)
	if cfg.CompactPlacement {
		ipsecX, ipsecY = clampFree(b, 2, 0)
	}
	ipsecTile := b.PlaceTile(AddrIPSec, ipsecX, ipsecY, n.IPSec, common,
		func(c *engine.TileConfig) { c.DefaultSpread = spread })
	ipsecTile.DropSink = dropSink

	cacheCap := cfg.CacheCapacity
	if cacheCap < 1 {
		cacheCap = 1
	}
	n.Cache = engine.NewKVSCacheEngine(engine.KVSCacheConfig{
		Capacity: cacheCap, LookupCycles: 2, RDMAAddr: AddrRDMA,
	})
	cacheX, cacheY := clampFree(b, rmtX+1, clampY(midY+1, h))
	if cfg.CompactPlacement {
		cacheX, cacheY = clampFree(b, 2, 1)
	}
	cacheTile := b.PlaceTile(AddrKVSCache, cacheX, cacheY, n.Cache, common)
	cacheTile.DropSink = dropSink

	n.RDMA = engine.NewRDMAEngine(engine.RDMAConfig{DMAAddr: AddrDMA, IssueCycles: 4})
	rdmaX, rdmaY := clampFree(b, rmtX+1, clampY(midY-1, h))
	if cfg.CompactPlacement {
		rdmaX, rdmaY = clampFree(b, 3, 0)
	}
	rdmaTile := b.PlaceTile(AddrRDMA, rdmaX, rdmaY, n.RDMA, common,
		func(c *engine.TileConfig) { c.DefaultSpread = spread })
	rdmaTile.DropSink = dropSink

	// Optional offloads: TCP segmentation and per-tenant rate limiting.
	if cfg.LSO != nil {
		n.LSOEng = engine.NewLSOEngine(*cfg.LSO)
		x, y := b.NextFree()
		lsoTile := b.PlaceTile(AddrLSO, x, y, n.LSOEng, common)
		lsoTile.DropSink = dropSink
	}
	if len(cfg.RateLimits) > 0 {
		n.RateLim = engine.NewRateLimiterEngine(engine.RateLimiterConfig{FreqHz: cfg.FreqHz, BurstBytes: 16 * 1024})
		for tenant, gbps := range cfg.RateLimits {
			n.RateLim.SetLimit(tenant, gbps)
		}
		x, y := b.NextFree()
		rlTile := b.PlaceTile(AddrRateLim, x, y, n.RateLim, common)
		rlTile.DropSink = dropSink
	}

	// Hot-standby replicas for the failover control plane: full engine
	// instances at their own addresses, reachable only after the health
	// monitor rewrites RMT steering toward them.
	if cfg.IPSecReplicas > 5 || cfg.DMAReplicas > 5 {
		panic(fmt.Sprintf("core: replica counts %d/%d exceed the 5-instance address space",
			cfg.IPSecReplicas, cfg.DMAReplicas))
	}
	for i := 1; i < cfg.IPSecReplicas; i++ {
		alt := engine.NewIPSecEngine(cfg.IPSec)
		n.IPSecAlts = append(n.IPSecAlts, alt)
		x, y := b.NextFree()
		t := b.PlaceTile(AddrIPSecAlt+packet.Addr(i-1), x, y, alt, common,
			func(c *engine.TileConfig) { c.DefaultSpread = spread })
		t.DropSink = dropSink
	}
	for i := 1; i < cfg.DMAReplicas; i++ {
		altSink := engine.NewStagedSink(wrapSink(hostSink, sinkHost))
		altSink.SetWaker(b.Kernel.PokerFor(txTile))
		alt := engine.NewDMAEngine(engine.DMAConfig{
			PCIeGbps: cfg.PCIeGbps, FreqHz: cfg.FreqHz,
			BaseLatencyCycles: cfg.DMALatency, JitterCycles: cfg.DMAJitter,
			NotifyAddr: AddrPCIe,
		}, altSink, nil)
		n.DMAAlts = append(n.DMAAlts, alt)
		x, y := b.NextFree()
		t := b.PlaceTile(AddrDMAAlt+packet.Addr(i-1), x, y, alt, common,
			func(c *engine.TileConfig) { c.DefaultSpread = spread })
		b.Kernel.Register(altSink)
		t.DropSink = dropSink
	}

	b.Routes.SetDefault(AddrRMTBase)

	n.Events = &EventLog{}
	n.Events.AttachTracer(cfg.Tracer)
	if cfg.Health.Enable {
		mon := NewHealthMonitor(cfg.Health, b, n.Program, n.Events)
		ipsecGroup := []packet.Addr{AddrIPSec}
		for i := range n.IPSecAlts {
			ipsecGroup = append(ipsecGroup, AddrIPSecAlt+packet.Addr(i))
		}
		dmaGroup := []packet.Addr{AddrDMA}
		for i := range n.DMAAlts {
			dmaGroup = append(dmaGroup, AddrDMAAlt+packet.Addr(i))
		}
		for _, a := range ipsecGroup {
			mon.SetStandbys(a, standbysFor(ipsecGroup, a))
		}
		for _, a := range dmaGroup {
			mon.SetStandbys(a, standbysFor(dmaGroup, a))
		}
		// Registered serial, after every tile: each check samples the
		// cycle's final state, and its probes and table rewrites touch
		// state owned by many tiles, so it must never run concurrently
		// with the Eval shards.
		b.Kernel.RegisterSerial(mon)
		n.Monitor = mon
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Arm(b.Kernel, n.faultHooks()); err != nil {
			panic(fmt.Sprintf("core: arming fault plan: %v", err))
		}
	}
	// The tracer commits LAST: every staged sink registered above flushes
	// its deliveries (and their Deliver spans) before the tracer drains the
	// buffers, so a cycle's trace is complete when it reaches the stream.
	if cfg.Tracer != nil {
		b.Kernel.Register(cfg.Tracer)
	}
	// The invariant monitor observes the end-of-cycle barrier — after every
	// committer including the tracer, so its checks see the cycle's final,
	// fully drained state.
	if cfg.Invariants != nil {
		n.Invar = invariant.New(*cfg.Invariants)
		n.wireInvariants()
		n.Invar.Attach(b.Kernel)
	}
	return n
}

// Terminal sink indices for LocSink span locations.
const (
	sinkHost uint32 = 0
	sinkWire uint32 = 1
)

// tracedSink wraps a StagedSink target with Deliver-span emission. Targets
// run in the sequential Commit phase, so every tracedSink can share the
// one "sinks" buffer without violating the single-writer rule.
type tracedSink struct {
	inner engine.Sink
	buf   *trace.Buffer
	loc   uint32
}

// Deliver implements engine.Sink.
func (s tracedSink) Deliver(m *packet.Message, now uint64) {
	if s.buf.Want(m.TraceID) {
		s.buf.Emit(trace.Span{
			Msg: m.TraceID, Kind: trace.KindDeliver,
			LocKind: trace.LocSink, Loc: s.loc,
			Start: now, End: now, B: uint64(m.WireLen()),
			Tenant: m.Tenant,
		})
	}
	s.inner.Deliver(m, now)
}

// tapSink gives a Config.RackTap first refusal on wire deliveries. Like
// tracedSink it runs in the sequential Commit phase.
type tapSink struct {
	tap   func(*packet.Message, uint64) bool
	inner engine.Sink
}

// Deliver implements engine.Sink.
func (s tapSink) Deliver(m *packet.Message, now uint64) {
	if s.tap(m, now) {
		return
	}
	s.inner.Deliver(m, now)
}

// standbysFor returns group minus self, preserving group order.
func standbysFor(group []packet.Addr, self packet.Addr) []packet.Addr {
	out := make([]packet.Addr, 0, len(group)-1)
	for _, a := range group {
		if a != self {
			out = append(out, a)
		}
	}
	return out
}

// Run advances the simulation by the given number of cycles.
func (n *NIC) Run(cycles uint64) { n.Builder.Kernel.Run(cycles) }

// Now returns the current cycle.
func (n *NIC) Now() uint64 { return n.Builder.Kernel.Now() }

// Close releases the kernel's worker pool (a no-op for sequential runs).
// The NIC remains usable; a later Run restarts the pool on demand.
func (n *NIC) Close() { n.Builder.Kernel.Shutdown() }

// RunQuiet runs until no message has been delivered or dropped for
// idleWindow cycles, or until maxCycles elapse. It reports whether the NIC
// went quiet.
func (n *NIC) RunQuiet(idleWindow, maxCycles uint64) bool {
	activity := func() uint64 {
		return n.HostLat.Count + n.WireLat.Count + n.Drops.Value()
	}
	last := activity()
	lastChange := n.Now()
	for n.Now() < maxCycles {
		n.Run(idleWindow / 4)
		if a := activity(); a != last {
			last = a
			lastChange = n.Now()
		} else if n.Now()-lastChange >= idleWindow {
			return true
		}
	}
	return false
}

// Tile returns the tile hosting the given well-known engine address.
func (n *NIC) Tile(addr packet.Addr) *engine.Tile { return n.Builder.TileByAddr(addr) }

// RMTStats sums the RMT tiles' counters.
func (n *NIC) RMTStats() engine.RMTStats {
	var s engine.RMTStats
	for _, t := range n.Builder.RMTs {
		ts := t.Stats()
		s.Accepted += ts.Accepted
		s.Emitted += ts.Emitted
		s.Dropped += ts.Dropped
		s.Unrouted += ts.Unrouted
		s.StallCycles += ts.StallCycles
		s.QueueDropped += ts.QueueDropped
	}
	return s
}

// FlowCacheStats sums the RMT pipelines' flow-cache counters (all zero
// when Cfg.NoFlowCache).
func (n *NIC) FlowCacheStats() rmt.FlowCacheStats {
	var s rmt.FlowCacheStats
	for _, t := range n.Builder.RMTs {
		fs := t.Pipeline().FlowCacheStats()
		s.Hits += fs.Hits
		s.Misses += fs.Misses
		s.NegHits += fs.NegHits
		s.Flushes += fs.Flushes
	}
	return s
}

// Summary renders a human-readable run report.
func (n *NIC) Summary(cycles uint64) string {
	t := stats.NewTable("metric", "value")
	freq := n.Cfg.FreqHz
	ns := func(c float64) float64 { return c / freq * 1e9 }
	seconds := float64(cycles) / freq
	var rx, tx uint64
	for _, m := range n.MACs {
		rx += m.RxCount()
		tx += m.TxCount()
	}
	t.AddRow("cycles", cycles)
	t.AddRow("rx packets", rx)
	t.AddRow("tx packets", tx)
	t.AddRow("host deliveries", n.HostLat.Count)
	t.AddRow("wire deliveries", n.WireLat.Count)
	t.AddRow("sched drops", n.Drops.Value())
	rmtStats := n.RMTStats()
	t.AddRow("rmt passes", rmtStats.Accepted)
	if fc := n.FlowCacheStats(); fc.Hits+fc.Misses+fc.NegHits > 0 {
		t.AddRow("rmt flow-cache hit rate", fmt.Sprintf("%.1f%%", fc.HitRate()*100))
	}
	if n.WireLat.Count > 0 {
		t.AddRow("rtt p50 (ns)", ns(n.WireLat.All.P50()))
		t.AddRow("rtt p99 (ns)", ns(n.WireLat.All.P99()))
	}
	if n.HostLat.Count > 0 {
		t.AddRow("host-delivery p50 (ns)", ns(n.HostLat.All.P50()))
	}
	if seconds > 0 {
		t.AddRow("wire goodput (Gbps)", float64(n.WireLat.Bytes)*8/seconds/1e9)
	}
	hits, misses, _ := n.Cache.Counts()
	t.AddRow("cache hits/misses", fmt.Sprintf("%d/%d", hits, misses))
	dec, enc := n.IPSec.Counts()
	t.AddRow("ipsec dec/enc", fmt.Sprintf("%d/%d", dec, enc))
	return t.String()
}

// TenantTotals sums per-tenant engine tallies across every offload tile.
func (n *NIC) TenantTotals() map[uint16]engine.TenantTally {
	out := make(map[uint16]engine.TenantTally)
	for _, tile := range n.Builder.Tiles {
		for id, ta := range tile.TenantStats() {
			sum := out[id]
			sum.Enqueued += ta.Enqueued
			sum.Processed += ta.Processed
			sum.ServiceCycles += ta.ServiceCycles
			sum.QueueWaitTotal += ta.QueueWaitTotal
			sum.Dropped += ta.Dropped
			out[id] = sum
		}
	}
	return out
}

// TenantReport renders per-tenant wire latency and aggregate engine
// occupancy — the isolation scoreboard: a victim's p99 and service share
// should hold steady as an aggressor ramps.
func (n *NIC) TenantReport() string {
	totals := n.TenantTotals()
	ids := make([]uint16, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	for id := range n.WireLat.ByTenant {
		if _, ok := totals[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	freq := n.Cfg.FreqHz
	ns := func(c float64) float64 { return c / freq * 1e9 }
	t := stats.NewTable("tenant", "wire count", "rtt p50 (ns)", "rtt p99 (ns)", "svc cycles", "enq", "dropped")
	for _, id := range ids {
		h := n.WireLat.Tenant(id)
		ta := totals[id]
		p50, p99 := "-", "-"
		if h.Count() > 0 {
			p50 = fmt.Sprintf("%.0f", ns(h.P50()))
			p99 = fmt.Sprintf("%.0f", ns(h.P99()))
		}
		t.AddRow(fmt.Sprintf("%d", id), h.Count(), p50, p99, ta.ServiceCycles, ta.Enqueued, ta.Dropped)
	}
	return t.String()
}

// TileReport renders per-tile utilization, queueing, and drop statistics —
// the first place to look when a run shows unexpected latency.
func (n *NIC) TileReport() string {
	t := stats.NewTable("tile", "busy", "processed", "dropped", "stall", "mean qwait", "qlen")
	for _, tile := range n.Builder.Tiles {
		s := tile.Stats()
		t.AddRow(tile.Name(), s.BusyCycles, s.Processed, s.Dropped, s.StallCycles,
			fmt.Sprintf("%.1f", s.MeanQueueWait()), tile.QueueLen())
	}
	for i, r := range n.Builder.RMTs {
		s := r.Stats()
		t.AddRow(fmt.Sprintf("rmt%d", i), "-", s.Accepted, s.Dropped+s.QueueDropped, s.StallCycles, "-", r.QueueLen())
	}
	return t.String()
}

// clampY bounds a row index into the mesh.
func clampY(y, h int) int {
	if y < 0 {
		return 0
	}
	if y >= h {
		return h - 1
	}
	return y
}

// clampFree returns (x, y) if unoccupied, else the next free node.
func clampFree(b *Builder, x, y int) (int, int) {
	if !b.used[b.Mesh.NodeAt(x, y)] {
		return x, y
	}
	return b.NextFree()
}
