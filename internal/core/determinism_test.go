package core

import (
	"fmt"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/workload"
)

// detCase is one kernel execution mode under test. The hot-path ablation
// knobs (flow cache, calendar queue) ride the same matrix: disabling them
// must not move a single statistic, in any kernel mode. The third axis is
// the kernel loop itself: `ticked` runs the every-Ticker-every-cycle
// oracle instead of the event-driven loaded path, and the two must be
// byte-identical in every combination — a missed wakeup in the event
// engine shows up here as a fingerprint divergence.
type detCase struct {
	name        string
	workers     int
	fastForward bool
	noFlowCache bool
	heapQueue   bool
	ticked      bool
}

var detCases = []detCase{
	// The reference: sequential ticked oracle. Everything below must
	// reproduce its fingerprint byte for byte.
	{name: "ticked-sequential", ticked: true},
	// Ticked oracle across the worker/fast-forward axis.
	{name: "ticked-workers2", ticked: true, workers: 2},
	{name: "ticked-workers8", ticked: true, workers: 8},
	{name: "ticked-sequential+ff", ticked: true, fastForward: true},
	{name: "ticked-workers8+ff", ticked: true, workers: 8, fastForward: true},
	{name: "ticked-workers8+ff+nocache+heapq", ticked: true, workers: 8, fastForward: true, noFlowCache: true, heapQueue: true},
	// Event engine (the default) across the same axes.
	{name: "event-sequential"},
	{name: "event-workers2", workers: 2},
	{name: "event-workers8", workers: 8},
	{name: "event-sequential+ff", fastForward: true},
	{name: "event-workers8+ff", workers: 8, fastForward: true},
	{name: "event-sequential+nocache", noFlowCache: true},
	{name: "event-workers8+nocache", workers: 8, noFlowCache: true},
	{name: "event-sequential+heapq", heapQueue: true},
	{name: "event-workers8+ff+nocache+heapq", workers: 8, fastForward: true, noFlowCache: true, heapQueue: true},
}

// detRun builds a NIC in the given mode over a seeded two-port traffic mix
// with a fault plan and health monitoring, runs it to a fixed horizon, and
// returns the fingerprint.
func detRun(c detCase, horizon uint64) string {
	cfg := DefaultConfig()
	cfg.Workers = c.workers
	cfg.FastForward = c.fastForward
	cfg.NoFlowCache = c.noFlowCache
	cfg.HeapSchedQueue = c.heapQueue
	cfg.NoEventEngine = c.ticked
	cfg.IPSecReplicas = 2
	cfg.Health = DefaultHealthConfig()
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: 1000, Kind: fault.Wedge, Engine: AddrIPSec, For: 30_000}).
		Add(fault.Event{At: 2500, Kind: fault.FlakeDrop, Engine: AddrKVSCache, EveryN: 7, For: 20_000})
	// Two ports: a mixed GET/SET partly-WAN stream and a latency/bulk
	// blend, both bounded so the run drains and fast-forward has real idle
	// tail to skip.
	srcs := []engine.Source{
		kvsSource(60, 0.8, 0.5, 7),
		workload.NewMerge(
			kvsSource(40, 1.0, 0, 11),
			workload.NewFixedStream(workload.FixedStreamConfig{
				FrameBytes: 256, RateGbps: 2, FreqHz: 500e6,
				Tenant: 3, Count: 30, Seed: 13,
			}),
		),
	}
	nic := NewNIC(cfg, srcs)
	defer nic.Close()
	nic.Run(horizon)
	return nic.Fingerprint()
}

// TestCrossKernelDeterminism is the core acceptance test: the same seeded
// workload and fault plan must produce byte-identical statistics, event
// logs, and final cycle counts under the sequential kernel, parallel
// kernels, fast-forwarding kernels, and — the newest axis — the
// event-driven loop against the ticked oracle.
func TestCrossKernelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode NIC runs are slow")
	}
	const horizon = 120_000
	want := detRun(detCases[0], horizon)
	for _, c := range detCases[1:] {
		got := detRun(c, horizon)
		if got != want {
			t.Errorf("mode %s diverged from the ticked oracle:\n%s", c.name, diffLines(want, got))
		}
	}
}

// TestCrossKernelDeterminismRepeatable re-runs one parallel mode to catch
// scheduling-dependent flakiness (a racy model tends to flicker between
// runs even when it happens to match once).
func TestCrossKernelDeterminismRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode NIC runs are slow")
	}
	const horizon = 60_000
	first := detRun(detCase{name: "workers4", workers: 4}, horizon)
	for i := 0; i < 2; i++ {
		if again := detRun(detCase{name: "workers4", workers: 4}, horizon); again != first {
			t.Fatalf("workers=4 run %d diverged from its first run:\n%s", i+2, diffLines(first, again))
		}
	}
}

// diffLines renders the first few differing lines between two fingerprints.
func diffLines(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	out := ""
	n := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			out += fmt.Sprintf("line %d:\n  sequential: %q\n  this mode:  %q\n", i+1, w, g)
			n++
			if n >= 8 {
				out += "  ...\n"
				break
			}
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
