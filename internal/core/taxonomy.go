package core

import "github.com/panic-nic/panic/internal/stats"

// The paper's §2.1 offload taxonomy (Table 1): offloads are classified on
// three dimensions.

// OffloadLevel distinguishes infrastructure from application offloads.
type OffloadLevel string

// Offload levels.
const (
	LevelInfrastructure OffloadLevel = "Infrastructure"
	LevelApplication    OffloadLevel = "Application"
)

// OffloadPlacement distinguishes inline from CPU-bypass offloads.
type OffloadPlacement string

// Offload placements.
const (
	PlacementInline    OffloadPlacement = "Inline"
	PlacementCPUBypass OffloadPlacement = "CPU-bypass"
)

// OffloadResource distinguishes computation, memory, and network offloads.
type OffloadResource string

// Offload resources.
const (
	ResourceComputation OffloadResource = "Computation"
	ResourceMemory      OffloadResource = "Memory"
	ResourceNetwork     OffloadResource = "Network"
)

// TaxonomyEntry is one row of the paper's Table 1: how a prior system's
// offload classifies along the three dimensions. A system may span
// multiple classifications.
type TaxonomyEntry struct {
	Project    string
	Levels     []OffloadLevel
	Placements []OffloadPlacement
	Resources  []OffloadResource
}

// Table1 returns the paper's Table 1 verbatim.
func Table1() []TaxonomyEntry {
	return []TaxonomyEntry{
		{"FlexNIC", []OffloadLevel{LevelApplication}, []OffloadPlacement{PlacementInline}, []OffloadResource{ResourceComputation}},
		{"Emu", []OffloadLevel{LevelApplication, LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceMemory, ResourceNetwork}},
		{"SENIC", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementInline}, []OffloadResource{ResourceNetwork}},
		{"sNICh", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceNetwork}},
		{"DCQCN", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceNetwork}},
		{"TCP Offload Engines", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceNetwork}},
		{"Uno", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceNetwork}},
		{"Azure SmartNIC", []OffloadLevel{LevelInfrastructure}, []OffloadPlacement{PlacementCPUBypass}, []OffloadResource{ResourceNetwork}},
		{"RDMA", []OffloadLevel{LevelApplication}, []OffloadPlacement{PlacementInline, PlacementCPUBypass}, []OffloadResource{ResourceNetwork, ResourceMemory}},
	}
}

// Table1Render formats Table 1 like the paper.
func Table1Render() string {
	t := stats.NewTable("Project", "Offload", "Type")
	join := func(parts []string) string {
		out := ""
		for i, p := range parts {
			if i > 0 {
				out += "/"
			}
			out += p
		}
		return out
	}
	for _, e := range Table1() {
		var lv, pl, rs []string
		for _, l := range e.Levels {
			lv = append(lv, string(l))
		}
		for _, p := range e.Placements {
			pl = append(pl, string(p))
		}
		for _, r := range e.Resources {
			rs = append(rs, string(r))
		}
		t.AddRow(e.Project, join(lv), join(pl)+" "+join(rs))
	}
	return t.String()
}
