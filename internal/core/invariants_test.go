package core

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/trace"
)

// TestInvariantMonitorCleanLoadedRun arms every invariant check on a
// deliberately messy assembly — weighted tenants, replicas, a fault plan
// mixing engine and link faults, tracing on, flow cache on — and requires
// a clean verdict. This is the "the net itself holds on main" gate: a
// false positive here would poison every chaos run.
func TestInvariantMonitorCleanLoadedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TenantWeights = map[uint16]uint64{1: 3, 2: 1}
	cfg.QueueCap = 256
	cfg.IPSecReplicas = 2
	cfg.Health = DefaultHealthConfig()
	cfg.Tracer = trace.New(trace.Options{Sample: 4})
	cfg.Invariants = &invariant.Config{Every: 512}
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: 2000, Kind: fault.Wedge, Engine: AddrIPSec, For: 9000}).
		Add(fault.Event{At: 3000, Kind: fault.FlakeDrop, Engine: AddrKVSCache, EveryN: 7, For: 5000}).
		Add(fault.Event{At: 4000, Kind: fault.LinkDegrade,
			From: noc.Coord{X: 2, Y: 2}, To: noc.Coord{X: 3, Y: 2}, EveryN: 3, For: 4000})
	nic := NewNIC(cfg, []engine.Source{
		kvsSource(200, 0.9, 0.5, 41),
		tenantGetSource(2, 200, 43),
	})
	nic.Run(60_000)

	if err := nic.Invar.Err(); err != nil {
		t.Fatalf("invariant violations on a healthy run: %v\nevents:\n%s", err, nic.Events.String())
	}
	if nic.Invar.Passes() < 60_000/512 {
		t.Errorf("monitor ran %d passes, want >= %d", nic.Invar.Passes(), 60_000/512)
	}
	// The expensive checks demonstrably engaged: flow-cache hits were
	// shadow-executed and spans were validated.
	var checks uint64
	for _, r := range nic.Builder.RMTs {
		c, _, _ := r.Pipeline().ShadowCheckStats()
		checks += c
	}
	if checks == 0 {
		t.Error("no flow-cache shadow checks ran on a cache-heavy run")
	}
	if len(nic.Cfg.Tracer.Set().Spans) == 0 {
		t.Error("no spans collected, trace-span check never exercised")
	}
}

// TestInvariantMonitorIsTransparent runs the same seeded scenario with the
// monitor off and on and requires byte-identical results: arming the net
// must not perturb the simulation it watches.
func TestInvariantMonitorIsTransparent(t *testing.T) {
	run := func(inv *invariant.Config) (string, string) {
		cfg := DefaultConfig()
		cfg.TenantWeights = map[uint16]uint64{1: 3, 2: 1}
		cfg.QueueCap = 256
		cfg.Health = DefaultHealthConfig()
		cfg.Invariants = inv
		cfg.FaultPlan = (&fault.Plan{}).
			Add(fault.Event{At: 1500, Kind: fault.Wedge, Engine: AddrKVSCache, For: 6000})
		nic := NewNIC(cfg, []engine.Source{
			kvsSource(120, 0.9, 0.3, 17),
			tenantGetSource(2, 120, 19),
		})
		nic.Run(50_000)
		if inv != nil {
			if err := nic.Invar.Err(); err != nil {
				t.Fatalf("monitored run not clean: %v", err)
			}
		}
		return nic.Summary(50_000), nic.Events.String()
	}
	sumOff, evOff := run(nil)
	sumOn, evOn := run(&invariant.Config{Every: 256})
	if sumOff != sumOn {
		t.Errorf("summary differs with monitor armed:\n--- off\n%s\n--- on\n%s", sumOff, sumOn)
	}
	if evOff != evOn {
		t.Errorf("event log differs with monitor armed:\n--- off\n%s--- on\n%s", evOff, evOn)
	}
}

// TestInvariantPassCyclesMatchTickedOracle pins the monitor's sampling
// schedule across kernel modes: with the event engine bulk-advancing
// between wake points (and the ticked oracle fast-forwarding its own
// globally idle stretches), a due pass must still land on exactly the
// interval cycle — the ObserverDue clamp steps that cycle instead of
// jumping over it. A recorder check captures the cycle of every pass in
// all four mode combinations; the sequences must be identical, and the
// deferred-sync path means each pass also sees oracle-exact state (the
// runs stay invariant-clean).
func TestInvariantPassCyclesMatchTickedOracle(t *testing.T) {
	const horizon = 50_000
	const every = 700 // deliberately not a power of two
	run := func(ticked, ff bool) ([]uint64, string, uint64) {
		cfg := DefaultConfig()
		cfg.NoEventEngine = ticked
		cfg.FastForward = ff
		cfg.Health = DefaultHealthConfig()
		cfg.Invariants = &invariant.Config{Every: every}
		// Bounded sources: the run drains, leaving a long idle tail for
		// bulk advance to jump — with due passes interleaved through it.
		nic := NewNIC(cfg, []engine.Source{
			kvsSource(120, 0.9, 0.3, 17),
			tenantGetSource(2, 120, 19),
		})
		defer nic.Close()
		var cycles []uint64
		nic.Invar.AddCheck("pass-recorder", func(c uint64) error {
			cycles = append(cycles, c)
			return nil
		})
		nic.Run(horizon)
		if err := nic.Invar.Err(); err != nil {
			t.Fatalf("run (ticked=%v ff=%v) not invariant-clean: %v", ticked, ff, err)
		}
		return cycles, nic.Fingerprint(), nic.Builder.Kernel.SkippedCycles()
	}

	wantCycles, wantFP, _ := run(true, false)
	for i, c := range wantCycles {
		// The oracle without fast-forward steps every cycle, so its passes
		// sit at the exact interval multiples (plus the cycle-0 pass); that
		// is the sequence every other mode must reproduce.
		if want := uint64(i) * every; c != want {
			t.Fatalf("ticked pass %d at cycle %d, want %d", i, c, want)
		}
	}
	if len(wantCycles) < horizon/every {
		t.Fatalf("only %d passes over %d cycles at interval %d", len(wantCycles), horizon, every)
	}
	modes := []struct {
		name   string
		ticked bool
		ff     bool
	}{
		{"ticked+ff", true, true},
		{"event", false, false},
		{"event+ff", false, true},
	}
	for _, m := range modes {
		cycles, fp, skipped := run(m.ticked, m.ff)
		if fp != wantFP {
			t.Errorf("%s fingerprint diverged from the ticked oracle", m.name)
		}
		if len(cycles) != len(wantCycles) {
			t.Fatalf("%s ran %d passes, oracle ran %d", m.name, len(cycles), len(wantCycles))
		}
		for i := range cycles {
			if cycles[i] != wantCycles[i] {
				t.Fatalf("%s pass %d at cycle %d, oracle at %d", m.name, i, cycles[i], wantCycles[i])
			}
		}
		if m.ff && skipped == 0 {
			t.Errorf("%s skipped no cycles: the drained tail should fast-forward", m.name)
		}
	}
}

// TestInvariantMonitorCatchesPlantedCacheBug plants the canonical bug —
// RewriteEngineTenant forgets to invalidate the flow cache — and requires
// the coherence check to catch it. The scenario is a tenant-scoped
// failover: the health monitor repoints tenant 1's steering away from the
// wedged cache engine, the planted bug leaves stale cached verdicts in
// place, and the sampled shadow re-execution must see the divergence.
func TestInvariantMonitorCatchesPlantedCacheBug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = []uint16{1, 2}
	cfg.QueueCap = 256
	cfg.Health = DefaultHealthConfig()
	cfg.Health.TenantDomains = map[packet.Addr][]uint16{AddrKVSCache: {1}}
	cfg.Invariants = &invariant.Config{Every: 512}
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: 1000, Kind: fault.Wedge, Engine: AddrKVSCache, For: 40_000})
	nic := NewNIC(cfg, []engine.Source{
		tenantGetSource(1, 600, 31),
		tenantGetSource(2, 600, 37),
	})
	nic.Program.PlantSkipTenantInvalidate()
	nic.Run(50_000)

	err := nic.Invar.Err()
	if err == nil {
		t.Fatalf("planted stale-cache bug not caught\nevents:\n%s", nic.Events.String())
	}
	if v := nic.Invar.Violations()[0]; v.Check != "flow-cache-coherence" {
		t.Errorf("first violation = %v, want flow-cache-coherence", v)
	}
	if !strings.Contains(err.Error(), "shadow mismatch") {
		t.Errorf("violation detail %q does not describe a shadow mismatch", err)
	}
}

// TestFailoverSkipsDegradedReplica is the regression test for the standby
// vetting fix: the replica is reachable and fault-free as a tile, but an
// active fault plan has severed its mesh links. Rerouting at it would
// blackhole the failed engine's traffic (and previously did); the monitor
// must instead fall through to punt-to-host.
func TestFailoverSkipsDegradedReplica(t *testing.T) {
	const count = 30
	cfg := DefaultConfig()
	cfg.IPSecReplicas = 2
	cfg.Health = DefaultHealthConfig()
	cfg.Invariants = &invariant.Config{Every: 512}
	cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: 500, Kind: fault.Wedge, Engine: AddrIPSec})
	nic := NewNIC(cfg, []engine.Source{wanSource(count, 5)})

	// Sever the links into and out of the replica's node before traffic
	// starts, as a fault plan targeting its coordinates would.
	mesh := nic.Builder.Mesh
	alt := nic.Tile(AddrIPSecAlt).Node()
	co := mesh.CoordOf(alt)
	nb := noc.Coord{X: co.X - 1, Y: co.Y}
	if co.X == 0 {
		nb = noc.Coord{X: co.X + 1, Y: co.Y}
	}
	mesh.SetLinkFault(mesh.NodeAt(nb.X, nb.Y), alt, noc.LinkFault{Severed: true})

	nic.Run(80_000)

	if e, ok := findEvent(nic.Events, "rerouted", uint16(AddrIPSec)); ok {
		t.Fatalf("rerouted to a link-severed replica: %+v\nevents:\n%s", e, nic.Events.String())
	}
	if _, ok := findEvent(nic.Events, "punted", uint16(AddrIPSec)); !ok {
		t.Fatalf("no punt event — expected fall-through to host:\n%s", nic.Events.String())
	}
	// Degraded-mode service still completes: every request reaches host
	// software (same guarantee as TestPuntToHostWhenNoReplica).
	if gets, _ := nic.Host.Counts(); gets != count {
		t.Errorf("host served %d GETs, want %d\n%s", gets, count, nic.TileReport())
	}
	if err := nic.Invar.Err(); err != nil {
		t.Errorf("invariant violations during degraded-mode run: %v", err)
	}
}
