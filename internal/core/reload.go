package core

import (
	"fmt"
	"sort"

	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
)

// This file is the NIC's hot-reload and snapshot surface: the hooks the
// serve control plane (internal/serve) calls between kernel cycles to
// reconfigure a running NIC and to publish live metrics. Every mutation
// here reuses a mechanism that is already exercised mid-run by the health
// monitor or the fault scheduler — table mutations bump the program
// generation, so the RMT flow caches invalidate themselves on the next
// lookup — which is what keeps a reloaded run bit-identical to a run that
// was configured that way from the same cycle.
//
// Call discipline: none of these methods lock. They must run on the
// goroutine driving the kernel, strictly between Run calls (the serve
// loop's cycle-aligned barrier), never concurrently with a cycle.

// SetTenantWeights swaps the weighted-LSTF weight table on every
// scheduling queue and records the new table in Cfg.TenantWeights. Weights
// must be >= 1; a tenant absent from the map reverts to the scheduler's
// default weight. It fails when the NIC was built without TenantWeights
// (the tiles then rank with plain LSTF and have no weight state to swap).
func (n *NIC) SetTenantWeights(weights map[uint16]uint64) error {
	if len(n.wlstfs) == 0 {
		return fmt.Errorf("core: NIC has no weighted-LSTF scheduler (build it with Config.TenantWeights)")
	}
	for id, w := range weights {
		if w == 0 {
			return fmt.Errorf("core: tenant %d weight must be >= 1", id)
		}
	}
	for _, s := range n.wlstfs {
		s.SetWeights(weights)
	}
	cp := make(map[uint16]uint64, len(weights))
	for id, w := range weights {
		cp[id] = w
	}
	n.Cfg.TenantWeights = cp
	return nil
}

// TenantWeight returns the tenant's current effective scheduler weight
// (1 when the NIC has no weighted-LSTF scheduler).
func (n *NIC) TenantWeight(id uint16) uint64 {
	if len(n.wlstfs) == 0 {
		return 1
	}
	return n.wlstfs[0].Weight(id)
}

// InstallACLDrop installs a drop rule for the IPv4 source prefix into the
// steering program's ACL stage — the live DoS-shedding knob. The table
// mutation bumps the program generation, so every RMT flow cache discards
// decisions that predate the rule.
func (n *NIC) InstallACLDrop(srcPrefix uint64, prefixLen, priority int) error {
	if prefixLen < 0 || prefixLen > 32 {
		return fmt.Errorf("core: acl prefix length %d out of [0,32]", prefixLen)
	}
	InstallDropRule(n.Program, srcPrefix, prefixLen, priority)
	return nil
}

// ClearACL removes every installed ACL drop rule and returns how many were
// removed.
func (n *NIC) ClearACL() int {
	acl := n.Program.Stages[0][0]
	if acl.Name != "acl" {
		panic("core: program has no acl stage")
	}
	return acl.Clear()
}

// RewriteSteering repoints every chain hop targeting old at new across the
// steering program — the same primitive the health monitor uses for
// failover, exposed for operator-driven traffic moves (e.g. steering onto
// a hot-standby replica ahead of maintenance). Both addresses must resolve
// to placed tiles. Returns the number of hops rewritten.
func (n *NIC) RewriteSteering(old, new packet.Addr) (int, error) {
	if n.Builder.TileByAddr(old) == nil && !n.isRMTAddr(old) {
		return 0, fmt.Errorf("core: no tile at address %d", old)
	}
	if n.Builder.TileByAddr(new) == nil && !n.isRMTAddr(new) {
		return 0, fmt.Errorf("core: no tile at address %d", new)
	}
	return n.Program.RewriteEngine(old, new), nil
}

// RewriteSteeringTenant repoints chain hops targeting old at new in table
// entries pinned to the given tenant only — the tenant-scoped traffic
// move. Returns the number of hops rewritten.
func (n *NIC) RewriteSteeringTenant(old, new packet.Addr, tenant uint16) (int, error) {
	if n.Builder.TileByAddr(new) == nil && !n.isRMTAddr(new) {
		return 0, fmt.Errorf("core: no tile at address %d", new)
	}
	return n.Program.RewriteEngineTenant(old, new, rmt.FieldMetaTenant, uint64(tenant)), nil
}

func (n *NIC) isRMTAddr(a packet.Addr) bool {
	return a >= AddrRMTBase && a < AddrRMTBase+packet.Addr(n.Cfg.RMTPipelines)
}

// ProgramGeneration returns the steering program's mutation counter — the
// value flow caches compare against; it strictly increases with every
// reload that touched a table.
func (n *NIC) ProgramGeneration() uint64 { return n.Program.Generation() }

// faultHooks returns the hooks that connect a fault plan to this NIC's
// hardware and failure-event log (shared between NewNIC's arm-at-assembly
// path and live injection).
func (n *NIC) faultHooks() fault.Hooks {
	return fault.Hooks{
		Tile: n.Builder.TileByAddr,
		Mesh: n.Builder.Mesh,
		Observe: func(e fault.Event, cycle uint64) {
			kind := "fault-injected"
			if e.Kind == fault.Heal || e.Kind == fault.HealLink {
				kind = "fault-lifted"
			}
			link := e.Kind == fault.LinkDegrade || e.Kind == fault.LinkSever || e.Kind == fault.HealLink
			n.Events.Append(FailureEvent{Cycle: cycle, Kind: kind, Engine: e.Engine, Link: link, Detail: e.String()})
		},
	}
}

// InjectFaultPlan arms a fault plan onto the running NIC. Event cycles are
// absolute; every event must lie strictly after the current cycle (shift a
// relative plan with fault.Plan.Shifted first). Injections and the heals
// they schedule feed the failure-event log exactly like plans armed at
// assembly.
func (n *NIC) InjectFaultPlan(plan *fault.Plan) error {
	return plan.Arm(n.Builder.Kernel, n.faultHooks())
}

// TenantSnapshot is one tenant's row in a StatsSnapshot.
type TenantSnapshot struct {
	Tenant        uint16  `json:"tenant"`
	Weight        uint64  `json:"weight"`
	WireCount     uint64  `json:"wire_count"`
	RTTp50Ns      float64 `json:"rtt_p50_ns"`
	RTTp99Ns      float64 `json:"rtt_p99_ns"`
	ServiceCycles uint64  `json:"service_cycles"`
	Enqueued      uint64  `json:"enqueued"`
	Dropped       uint64  `json:"dropped"`
}

// QueueSnapshot is one engine queue's depth row in a StatsSnapshot.
type QueueSnapshot struct {
	Tile  string `json:"tile"`
	Depth int    `json:"depth"`
}

// StatsSnapshot is a point-in-time copy of the NIC's live metrics, safe to
// serialize after the simulation has moved on. Built by Snapshot on the
// kernel-driving goroutine; contains no pointers into live state.
type StatsSnapshot struct {
	Cycle          uint64  `json:"cycle"`
	FreqHz         float64 `json:"freq_hz"`
	RxPackets      uint64  `json:"rx_packets"`
	TxPackets      uint64  `json:"tx_packets"`
	HostDeliveries uint64  `json:"host_deliveries"`
	WireDeliveries uint64  `json:"wire_deliveries"`
	SchedDrops     uint64  `json:"sched_drops"`

	RTTp50Ns          float64 `json:"rtt_p50_ns"`
	RTTp99Ns          float64 `json:"rtt_p99_ns"`
	HostP50Ns         float64 `json:"host_p50_ns"`
	WireGoodputGbps   float64 `json:"wire_goodput_gbps"`
	ThroughputMsgsSec float64 `json:"throughput_msgs_per_sim_sec"`

	RMTAccepted      uint64  `json:"rmt_accepted"`
	RMTDropped       uint64  `json:"rmt_dropped"`
	RMTStallCycles   uint64  `json:"rmt_stall_cycles"`
	FlowCacheHits    uint64  `json:"flow_cache_hits"`
	FlowCacheMisses  uint64  `json:"flow_cache_misses"`
	FlowCacheHitRate float64 `json:"flow_cache_hit_rate"`

	ProgramGeneration uint64 `json:"program_generation"`
	FailureEvents     int    `json:"failure_events"`

	Queues  []QueueSnapshot  `json:"queues"`
	Tenants []TenantSnapshot `json:"tenants"`
}

// Snapshot captures the NIC's live metrics. Like every hook in this file
// it must run on the kernel-driving goroutine between cycles; the returned
// value is then safe to hand to any other goroutine.
func (n *NIC) Snapshot() StatsSnapshot {
	freq := n.Cfg.FreqHz
	cycle := n.Now()
	ns := func(c float64) float64 { return c / freq * 1e9 }
	s := StatsSnapshot{
		Cycle:          cycle,
		FreqHz:         freq,
		HostDeliveries: n.HostLat.Count,
		WireDeliveries: n.WireLat.Count,
		SchedDrops:     n.Drops.Value(),

		ProgramGeneration: n.ProgramGeneration(),
		FailureEvents:     len(n.Events.Events()),
	}
	for _, m := range n.MACs {
		s.RxPackets += m.RxCount()
		s.TxPackets += m.TxCount()
	}
	if n.WireLat.Count > 0 {
		s.RTTp50Ns = ns(n.WireLat.All.P50())
		s.RTTp99Ns = ns(n.WireLat.All.P99())
	}
	if n.HostLat.Count > 0 {
		s.HostP50Ns = ns(n.HostLat.All.P50())
	}
	if cycle > 0 {
		seconds := float64(cycle) / freq
		s.WireGoodputGbps = float64(n.WireLat.Bytes) * 8 / seconds / 1e9
		s.ThroughputMsgsSec = float64(n.HostLat.Count+n.WireLat.Count) / seconds
	}
	rs := n.RMTStats()
	s.RMTAccepted = rs.Accepted
	s.RMTDropped = rs.Dropped + rs.QueueDropped
	s.RMTStallCycles = rs.StallCycles
	fc := n.FlowCacheStats()
	s.FlowCacheHits = fc.Hits
	s.FlowCacheMisses = fc.Misses
	if fc.Hits+fc.Misses+fc.NegHits > 0 {
		s.FlowCacheHitRate = fc.HitRate()
	}
	for _, tile := range n.Builder.Tiles {
		s.Queues = append(s.Queues, QueueSnapshot{Tile: tile.Name(), Depth: tile.QueueLen()})
	}
	for i, r := range n.Builder.RMTs {
		s.Queues = append(s.Queues, QueueSnapshot{Tile: fmt.Sprintf("rmt%d", i), Depth: r.QueueLen()})
	}

	totals := n.TenantTotals()
	ids := make([]uint16, 0, len(totals))
	seen := make(map[uint16]bool, len(totals))
	for id := range totals {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range n.WireLat.ByTenant {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := n.WireLat.Tenant(id)
		ta := totals[id]
		ts := TenantSnapshot{
			Tenant: id, Weight: n.TenantWeight(id),
			WireCount:     uint64(h.Count()),
			ServiceCycles: ta.ServiceCycles,
			Enqueued:      ta.Enqueued,
			Dropped:       ta.Dropped,
		}
		if h.Count() > 0 {
			ts.RTTp50Ns = ns(h.P50())
			ts.RTTp99Ns = ns(h.P99())
		}
		s.Tenants = append(s.Tenants, ts)
	}
	return s
}
