package core

import (
	"container/heap"

	"github.com/panic-nic/panic/internal/packet"
)

// KVSHost models the host-side key-value store behind the DMA engine: the
// authoritative store that serves cache misses and absorbs SETs. It
// implements engine.HostResponder. Responses re-enter the NIC after
// ServiceCycles, modeling the host's software path (process, post TX
// descriptor, descriptor fetch) that the on-NIC cache exists to bypass.
type KVSHost struct {
	// ServiceCycles is the host processing latency per request.
	ServiceCycles uint64
	// DefaultValueBytes sizes responses for keys never SET.
	DefaultValueBytes uint32
	// SoftCryptoCycles is the added cost of decrypting a still-encrypted
	// request in host software — the punt-to-host degraded mode (Fig 2c)
	// the control plane falls back to when the IPSec engine fails with no
	// replica. NewKVSHost defaults it to 4x ServiceCycles.
	SoftCryptoCycles uint64

	store map[uint64]uint32
	// txq holds responses waiting for the TX-DMA engine, ordered by the
	// cycle the host software finishes producing them.
	txq hostTxQueue

	gets, sets   uint64
	softDecrypts uint64
}

type hostTxItem struct {
	msg   *packet.Message
	ready uint64
	seq   uint64
}

type hostTxQueue struct {
	items []hostTxItem
	seq   uint64
}

func (q hostTxQueue) Len() int { return len(q.items) }
func (q hostTxQueue) Less(i, j int) bool {
	if q.items[i].ready != q.items[j].ready {
		return q.items[i].ready < q.items[j].ready
	}
	return q.items[i].seq < q.items[j].seq
}
func (q hostTxQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *hostTxQueue) Push(x any)   { q.items = append(q.items, x.(hostTxItem)) }
func (q *hostTxQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// NewKVSHost builds the host model.
func NewKVSHost(serviceCycles uint64, defaultValueBytes uint32) *KVSHost {
	return &KVSHost{
		ServiceCycles:     serviceCycles,
		DefaultValueBytes: defaultValueBytes,
		SoftCryptoCycles:  4 * serviceCycles,
		store:             make(map[uint64]uint32),
	}
}

// Respond implements engine.HostResponder. A request that arrives still
// encrypted (ESP with stashed plaintext — the punt-to-host degraded mode)
// is decrypted in host software at SoftCryptoCycles extra latency; the
// response is sent in the clear, since the re-encryption path needs the
// (failed) IPSec engine.
func (h *KVSHost) Respond(msg *packet.Message, now uint64) (*packet.Message, uint64, bool) {
	pkt := msg.Pkt
	extra := uint64(0)
	if pkt.Has(packet.LayerTypeESP) {
		if msg.Inner == nil {
			return nil, 0, false
		}
		pkt = msg.Inner
		extra = h.SoftCryptoCycles
		h.softDecrypts++
	}
	l := pkt.Layer(packet.LayerTypeKVS)
	if l == nil {
		return nil, 0, false
	}
	k := l.(*packet.KVS)
	switch k.Op {
	case packet.KVSGet:
		h.gets++
		vlen, ok := h.store[k.Key]
		if !ok {
			vlen = h.DefaultValueBytes
		}
		return h.reply(msg, pkt, k, packet.KVSGetResp, vlen), h.ServiceCycles + extra, true
	case packet.KVSSet:
		h.sets++
		h.store[k.Key] = k.ValueLen
		return h.reply(msg, pkt, k, packet.KVSSetResp, 0), h.ServiceCycles + extra, true
	default:
		return nil, 0, false
	}
}

// reply builds the response packet with swapped addressing and no chain;
// it re-enters through the RMT pipeline like any TX packet. pkt is the
// (possibly software-decrypted) request headers.
func (h *KVSHost) reply(req *packet.Message, pkt *packet.Packet, k *packet.KVS, op packet.KVSOp, vlen uint32) *packet.Message {
	reqEth := pkt.Layer(packet.LayerTypeEthernet).(*packet.Ethernet)
	reqIP := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	reqUDP := pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
	return &packet.Message{
		ID:      req.ID,
		TraceID: req.TraceID,
		Tenant:  req.Tenant,
		Class:   req.Class,
		Inject:  req.Inject,
		Port:    req.Port,
		Pkt: packet.NewPacket(int(vlen),
			&packet.Ethernet{Dst: reqEth.Src, Src: reqEth.Dst, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: reqIP.Dst, Dst: reqIP.Src},
			&packet.UDP{SrcPort: reqUDP.DstPort, DstPort: reqUDP.SrcPort},
			&packet.KVS{Op: op, Tenant: k.Tenant, Key: k.Key, ValueLen: vlen},
		),
	}
}

// Absorb implements engine.Sink-style delivery for the split RX/TX DMA
// datapath: the delivered request is processed by host software, and the
// response is queued for the TX-DMA engine to fetch ServiceCycles later.
func (h *KVSHost) Absorb(msg *packet.Message, now uint64) {
	resp, delay, ok := h.Respond(msg, now)
	if !ok {
		return
	}
	h.txq.seq++
	heap.Push(&h.txq, hostTxItem{msg: resp, ready: now + delay, seq: h.txq.seq})
}

// EnqueueTx queues an arbitrary host transmission (e.g. a large TCP send
// for the LSO engine) for the TX-DMA engine to fetch at the given cycle.
func (h *KVSHost) EnqueueTx(msg *packet.Message, ready uint64) {
	h.txq.seq++
	heap.Push(&h.txq, hostTxItem{msg: msg, ready: ready, seq: h.txq.seq})
}

// Poll implements engine.Source: the TX-DMA engine fetches responses whose
// host processing has finished.
func (h *KVSHost) Poll(now uint64) *packet.Message {
	if len(h.txq.items) == 0 || h.txq.items[0].ready > now {
		return nil
	}
	return heap.Pop(&h.txq).(hostTxItem).msg
}

// NextArrival implements engine.ArrivalSource: the earliest cycle at which
// Poll will return a response, which is exactly the head item's ready time
// (the heap is ordered by it). ok is false when nothing is queued — new
// work can only appear through Absorb or EnqueueTx, both of which run from
// components that are themselves non-quiescent until the enqueue lands.
func (h *KVSHost) NextArrival(now uint64) (uint64, bool) {
	if len(h.txq.items) == 0 {
		return 0, false
	}
	r := h.txq.items[0].ready
	if r < now {
		r = now
	}
	return r, true
}

// TxBacklog returns the number of responses awaiting fetch.
func (h *KVSHost) TxBacklog() int { return len(h.txq.items) }

// Counts returns (gets served, sets absorbed).
func (h *KVSHost) Counts() (gets, sets uint64) { return h.gets, h.sets }

// SoftDecrypts returns the number of requests the host had to decrypt in
// software (punt-to-host degraded mode).
func (h *KVSHost) SoftDecrypts() uint64 { return h.softDecrypts }

// Store exposes the authoritative map size (tests).
func (h *KVSHost) StoreLen() int { return len(h.store) }
