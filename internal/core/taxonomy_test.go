package core

import (
	"strings"
	"testing"
)

// TestTable1Taxonomy pins the taxonomy to the paper's Table 1.
func TestTable1Taxonomy(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 9", len(rows))
	}
	byName := map[string]TaxonomyEntry{}
	for _, r := range rows {
		byName[r.Project] = r
	}
	flexnic := byName["FlexNIC"]
	if len(flexnic.Levels) != 1 || flexnic.Levels[0] != LevelApplication {
		t.Errorf("FlexNIC level = %v", flexnic.Levels)
	}
	if flexnic.Placements[0] != PlacementInline || flexnic.Resources[0] != ResourceComputation {
		t.Errorf("FlexNIC = %+v", flexnic)
	}
	rdma := byName["RDMA"]
	if len(rdma.Placements) != 2 || len(rdma.Resources) != 2 {
		t.Errorf("RDMA should span both placements and two resources: %+v", rdma)
	}
	azure := byName["Azure SmartNIC"]
	if azure.Levels[0] != LevelInfrastructure || azure.Placements[0] != PlacementCPUBypass {
		t.Errorf("Azure SmartNIC = %+v", azure)
	}
	// Every entry has at least one value per dimension.
	for _, r := range rows {
		if len(r.Levels) == 0 || len(r.Placements) == 0 || len(r.Resources) == 0 {
			t.Errorf("%s has an empty dimension", r.Project)
		}
	}
}

func TestTable1RenderContainsAllProjects(t *testing.T) {
	out := Table1Render()
	for _, r := range Table1() {
		if !strings.Contains(out, r.Project) {
			t.Errorf("render missing %q:\n%s", r.Project, out)
		}
	}
}
