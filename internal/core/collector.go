package core

import (
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
)

// LatencyCollector is a sink that histograms end-to-end message latency
// (Inject to delivery) by traffic class and tenant.
type LatencyCollector struct {
	All      *stats.Histogram
	ByClass  map[packet.Class]*stats.Histogram
	ByTenant map[uint16]*stats.Histogram
	Bytes    uint64
	Count    uint64
	// OnDeliver, when set, observes every delivered message (tracing,
	// examples, tests).
	OnDeliver func(msg *packet.Message, now uint64)
}

// NewLatencyCollector creates an empty collector.
func NewLatencyCollector() *LatencyCollector {
	return &LatencyCollector{
		All:      stats.NewHistogram(),
		ByClass:  make(map[packet.Class]*stats.Histogram),
		ByTenant: make(map[uint16]*stats.Histogram),
	}
}

// Deliver implements engine.Sink.
func (c *LatencyCollector) Deliver(msg *packet.Message, now uint64) {
	lat := float64(now - msg.Inject)
	c.All.Observe(lat)
	h := c.ByClass[msg.Class]
	if h == nil {
		h = stats.NewHistogram()
		c.ByClass[msg.Class] = h
	}
	h.Observe(lat)
	ht := c.ByTenant[msg.Tenant]
	if ht == nil {
		ht = stats.NewHistogram()
		c.ByTenant[msg.Tenant] = ht
	}
	ht.Observe(lat)
	c.Bytes += uint64(msg.WireLen())
	c.Count++
	if c.OnDeliver != nil {
		c.OnDeliver(msg, now)
	}
}

// Class returns the histogram for a class (empty histogram when unseen).
func (c *LatencyCollector) Class(cl packet.Class) *stats.Histogram {
	if h := c.ByClass[cl]; h != nil {
		return h
	}
	return stats.NewHistogram()
}

// Tenant returns the histogram for a tenant (empty histogram when unseen).
func (c *LatencyCollector) Tenant(t uint16) *stats.Histogram {
	if h := c.ByTenant[t]; h != nil {
		return h
	}
	return stats.NewHistogram()
}
