package core

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/trace"
)

// This file registers the NIC's invariant checks on the runtime monitor
// (internal/invariant). Each check is read-only and runs at the kernel's
// end-of-cycle barrier, after every committer, so it sees the cycle's
// final state. ROBUSTNESS.md documents every invariant and its
// conservation equation.

// shadowCheckEvery is how often (in cache hits) an RMT flow-cache hit is
// shadow-executed against the full table walk when the invariant monitor
// is armed. The shadow run substitutes the real walk for the replay — a
// coherent cache makes them byte-identical — so the simulation stream is
// unperturbed at any rate; 64 keeps the cost noise-level.
const shadowCheckEvery = 64

// wireInvariants registers every NIC-level check on n.Invar.
func (n *NIC) wireInvariants() {
	m := n.Invar
	b := n.Builder

	// Flow-cache coherence: sample cache hits and re-execute them against
	// the full RMT walk; any field-level divergence is a stale cache.
	if !n.Cfg.NoFlowCache {
		for _, r := range b.RMTs {
			r.Pipeline().EnableShadowCheck(shadowCheckEvery)
		}
		m.AddCheck("flow-cache-coherence", func(uint64) error {
			for i, r := range b.RMTs {
				if _, mismatches, first := r.Pipeline().ShadowCheckStats(); mismatches > 0 {
					return fmt.Errorf("rmt pipeline %d: %d shadow mismatches; first: %s", i, mismatches, first)
				}
			}
			return nil
		})
	}

	// Message conservation, per tile and per tenant: every tile's custody
	// ledger (in = out + resident) plus its scheduling queue's push/pop
	// ledger and depth bound, audited by the engine package.
	m.AddCheck("tile-conservation", func(uint64) error {
		for _, t := range b.Tiles {
			if err := t.AuditConservation(); err != nil {
				return err
			}
		}
		for _, r := range b.RMTs {
			if err := r.AuditConservation(); err != nil {
				return err
			}
		}
		return nil
	})

	// Fabric conservation plus the tile/mesh boundary: messages in flight
	// inside the mesh reconcile with router buffers, and the lifetime
	// totals match across the boundary — every tile emission is a mesh
	// injection and every tile ejection a mesh delivery, so the composition
	// of the per-tile ledgers with this check is global conservation:
	// ingress == egress + drops + in-flight.
	m.AddCheck("mesh-conservation", func(uint64) error {
		if err := b.Mesh.AuditConservation(); err != nil {
			return err
		}
		var emitted, ejected uint64
		for _, t := range b.Tiles {
			s := t.Stats()
			emitted += s.Emitted
			ejected += s.Ejected
		}
		for _, r := range b.RMTs {
			s := r.Stats()
			emitted += s.Emitted
			ejected += s.Ejected
		}
		in, out := b.Mesh.OccCounts()
		if emitted != in {
			return fmt.Errorf("boundary: tiles emitted %d messages but the mesh counts %d injections", emitted, in)
		}
		if ejected != out {
			return fmt.Errorf("boundary: tiles ejected %d messages but the mesh counts %d deliveries", ejected, out)
		}
		return nil
	})

	// WLSTF deficit-credit conservation: per tenant, earned == credited +
	// overflow and credit == burst + credited − spent, with credit bounded
	// by burst.
	if len(n.wlstfs) > 0 {
		m.AddCheck("wlstf-credits", func(uint64) error {
			for i, w := range n.wlstfs {
				if err := w.Audit(); err != nil {
					return fmt.Errorf("wlstf %d: %w", i, err)
				}
			}
			return nil
		})
	}

	// Health-monitor legality: replay the failure log through a reference
	// state machine (see auditHealthEvents).
	hl := &healthLegality{nic: n}
	m.AddCheck("health-legality", hl.check)

	// Trace-span well-formedness: validate every span newly committed to
	// the master stream since the last pass.
	if tr := n.Cfg.Tracer; tr != nil {
		cursor := 0
		m.AddCheck("trace-spans", func(uint64) error {
			spans := tr.Set().Spans
			for cursor < len(spans) {
				sp := spans[cursor]
				cursor++
				if err := trace.ValidateSpan(sp); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// healthLegality replays the NIC's failure-event log through a reference
// state machine, incrementally (each pass consumes only newly appended
// events). It enforces:
//
//   - episode ordering: detected opens an episode; rerouted/punted/
//     unrecoverable/drained/recovered require one; reintegrated closes it;
//   - reroute-target legality: a rerouted event's target must have no
//     fault window open (no reroute to a wedged replica) and no open
//     failure episode of its own;
//   - punt legality: punting requires the DMA engine itself to have no
//     open episode;
//   - drain quiescence: a tile drained this very cycle must end the cycle
//     with an empty queue and no message in service (drain implies
//     quiesced; only same-cycle events are checkable — the monitor
//     samples, and older state is gone).
//
// Fault windows come from the same log: fault-injected opens an engine's
// window, fault-lifted closes it (a heal clears all faults at once). Link
// fault events are excluded — they carry no engine.
type healthLegality struct {
	nic    *NIC
	cursor int

	faultOpen map[packet.Addr]bool
	episodes  map[packet.Addr]*episode
}

// episode tracks one engine's failure episode in the reference machine.
type episode struct {
	open   bool
	routed bool
	// lastClosed is the cycle the last reintegration closed an episode;
	// tenant-scoped reintegration logs one event per tenant, so follow-on
	// events at the same cycle are legal repeats.
	lastClosed uint64
	hasClosed  bool
}

func (h *healthLegality) check(cycle uint64) error {
	if h.faultOpen == nil {
		h.faultOpen = make(map[packet.Addr]bool)
		h.episodes = make(map[packet.Addr]*episode)
	}
	events := h.nic.Events.Events()
	for h.cursor < len(events) {
		e := events[h.cursor]
		h.cursor++
		if err := h.step(e, cycle); err != nil {
			return fmt.Errorf("event %d (cycle %d, %s, %s): %w",
				h.cursor-1, e.Cycle, e.Kind, EngineName(e.Engine), err)
		}
	}
	return nil
}

func (h *healthLegality) step(e FailureEvent, now uint64) error {
	switch e.Kind {
	case "fault-injected":
		if !e.Link {
			h.faultOpen[e.Engine] = true
		}
	case "fault-lifted":
		if !e.Link {
			h.faultOpen[e.Engine] = false
		}
	case "detected":
		ep := h.episode(e.Engine)
		if ep.open {
			return fmt.Errorf("detected while an episode is already open")
		}
		ep.open = true
		ep.routed = false
	case "rerouted":
		ep := h.episode(e.Engine)
		if !ep.open {
			return fmt.Errorf("rerouted without an open episode")
		}
		if h.faultOpen[e.Target] {
			return fmt.Errorf("rerouted to %s, which has an active injected fault", EngineName(e.Target))
		}
		if tep, ok := h.episodes[e.Target]; ok && tep.open {
			return fmt.Errorf("rerouted to %s, which has an open failure episode", EngineName(e.Target))
		}
		ep.routed = true
	case "punted":
		ep := h.episode(e.Engine)
		if !ep.open {
			return fmt.Errorf("punted without an open episode")
		}
		if dep, ok := h.episodes[AddrDMA]; ok && dep.open {
			return fmt.Errorf("punted to host while the DMA engine has an open failure episode")
		}
		ep.routed = true
	case "unrecoverable":
		if !h.episode(e.Engine).open {
			return fmt.Errorf("unrecoverable without an open episode")
		}
	case "drained":
		if !h.episode(e.Engine).open {
			return fmt.Errorf("drained without an open episode")
		}
		if e.Cycle == now {
			if t := h.nic.Builder.TileByAddr(e.Engine); t != nil {
				if t.QueueLen() > 0 || t.Busy() {
					return fmt.Errorf("drained but not quiesced: queue=%d busy=%v", t.QueueLen(), t.Busy())
				}
			}
		}
	case "recovered":
		ep := h.episode(e.Engine)
		if !ep.open || !ep.routed {
			return fmt.Errorf("recovered without a routed episode")
		}
	case "reintegrated":
		ep := h.episode(e.Engine)
		if !ep.open || !ep.routed {
			// Tenant-domain reintegration emits one event per tenant at the
			// same cycle; repeats right after a close are legal.
			if ep.hasClosed && ep.lastClosed == e.Cycle {
				return nil
			}
			return fmt.Errorf("reintegrated without a routed episode")
		}
		ep.open = false
		ep.routed = false
		ep.hasClosed = true
		ep.lastClosed = e.Cycle
	}
	return nil
}

func (h *healthLegality) episode(a packet.Addr) *episode {
	ep := h.episodes[a]
	if ep == nil {
		ep = &episode{}
		h.episodes[a] = ep
	}
	return ep
}
