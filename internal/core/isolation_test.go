package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/workload"
)

// The isolation scenario: the victim's cache misses and every aggressor
// frame need the host link, the aggressor alone oversubscribes it
// (24 Gbps offered into 16 Gbps of PCIe), so a standing queue forms at
// the DMA tile — exactly where the weighted-LSTF scheduler arbitrates.
const (
	isoVictimGbps    = 1
	isoAggressorGbps = 24
	isoHorizon       = 300_000
	isoSeed          = 21
)

// isoCfg is the shared configuration for the multi-tenant isolation runs:
// two known tenants at equal weight, weighted-LSTF on every offload
// queue, and each tenant's rate credit set to its fair half of the
// 16 Gbps bottleneck link (128 B per 64-cycle period at 500 MHz ≈ 8 Gbps).
func isoCfg(c detCase) Config {
	cfg := DefaultConfig()
	cfg.Workers = c.workers
	cfg.FastForward = c.fastForward
	cfg.PCIeGbps = 16
	cfg.QueueCap = 128
	cfg.DMAJitter = 100
	cfg.TenantWeights = map[uint16]uint64{1: 1, 2: 1}
	cfg.TenantQuantumBytes = 128
	return cfg
}

// isoRun executes the contended (or, with aggressor false, solo-victim)
// scenario in the given kernel mode and returns the NIC.
func isoRun(c detCase, aggressor bool) *NIC {
	var src engine.Source
	if aggressor {
		src = workload.NewAggressorVictimMix(500e6, isoVictimGbps, isoAggressorGbps, isoSeed)
	} else {
		// The victim's stream is seeded first in spec order, so solo and
		// contended runs see the identical victim arrival process.
		src = workload.NewTenantMix(500e6, []workload.TenantSpec{workload.VictimSpec(isoVictimGbps)}, isoSeed)
	}
	nic := NewNIC(isoCfg(c), []engine.Source{src})
	defer nic.Close()
	nic.Run(isoHorizon)
	return nic
}

// TestTenantIsolationVictimP99Bounded is the PR's acceptance experiment:
// with weights 1:1, a saturating bulk aggressor may degrade the victim's
// p99 end-to-end delivery latency by at most 2x its solo baseline.
func TestTenantIsolationVictimP99Bounded(t *testing.T) {
	if testing.Short() {
		t.Skip("full NIC runs are slow")
	}
	seq := detCases[0]
	solo := isoRun(seq, false)
	contended := isoRun(seq, true)

	soloH := solo.HostLat.Tenant(1)
	contH := contended.HostLat.Tenant(1)
	if soloH.Count() == 0 || contH.Count() == 0 {
		t.Fatalf("victim deliveries: solo=%d contended=%d, want both > 0\n%s",
			soloH.Count(), contH.Count(), contended.TileReport())
	}
	// No victim message was lost to the aggressor's overload.
	if contH.Count() != soloH.Count() {
		t.Errorf("victim deliveries under contention = %d, solo = %d (victim lost traffic)",
			contH.Count(), soloH.Count())
	}
	soloP99, contP99 := soloH.P99(), contH.P99()
	if contP99 > 2*soloP99 {
		t.Errorf("victim p99 under aggressor = %.0f cycles, solo = %.0f (%.2fx, want <= 2x)\n%s",
			contP99, soloP99, contP99/soloP99, contended.TenantReport())
	}
	// The aggressor really was saturating: it oversubscribed the link and
	// paid for it in drops, and it consumed far more engine service than
	// the victim.
	agg := contended.TenantTotals()[2]
	vic := contended.TenantTotals()[1]
	if agg.Dropped == 0 {
		t.Error("aggressor had no drops: offered load did not saturate the link")
	}
	if vic.Dropped != 0 {
		t.Errorf("victim lost %d messages; overload must shed the aggressor only", vic.Dropped)
	}
	if agg.ServiceCycles < 4*vic.ServiceCycles {
		t.Errorf("aggressor service cycles = %d vs victim %d: workload not saturating",
			agg.ServiceCycles, vic.ServiceCycles)
	}
}

// TestTenantIsolationCrossKernelDeterminism requires the contended
// multi-tenant run — weighted-LSTF credit state, per-tenant tallies, and
// tenant latency histograms included — to be byte-identical across the
// sequential, parallel, and fast-forwarding kernels.
func TestTenantIsolationCrossKernelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode NIC runs are slow")
	}
	fp := func(c detCase) string {
		nic := isoRun(c, true)
		return nic.Fingerprint() + "\ntenants:\n" + nic.TenantReport()
	}
	want := fp(detCases[0])
	for _, c := range detCases[1:] {
		if got := fp(c); got != want {
			t.Errorf("mode %s diverged from sequential:\n%s", c.name, diffLines(want, got))
		}
	}
}
