package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// TestNICLSOSegmentsHostSend: a large host TCP send is segmented on the
// NIC and leaves the wire as MSS-sized frames.
func TestNICLSOSegmentsHostSend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSO = &engine.LSOConfig{MSS: 1460, BytesPerCycle: 64, SetupCycles: 10}
	nic := NewNIC(cfg, []engine.Source{nil})

	send := &packet.Message{
		ID:     1,
		Tenant: 1,
		Class:  packet.ClassBulk,
		Port:   -1,
		Pkt: packet.NewPacket(8000, // ~6 segments
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP4{10, 255, 0, 2}, Dst: packet.IP4{10, 0, 0, 5}},
			&packet.TCP{SrcPort: 80, DstPort: 5000, Seq: 1, Flags: packet.TCPFlagACK},
		),
	}
	nic.Host.EnqueueTx(send, 10)
	if !nic.RunQuiet(2000, 500_000) {
		t.Fatal("NIC did not go quiet")
	}
	sends, segs := nic.LSOEng.Counts()
	if sends != 1 || segs != 6 {
		t.Fatalf("LSO counts = %d sends, %d segments (want 1, 6)", sends, segs)
	}
	if nic.WireLat.Count != 6 {
		t.Errorf("wire frames = %d, want 6", nic.WireLat.Count)
	}
	if tx := nic.MACs[0].TxCount(); tx != 6 {
		t.Errorf("port 0 transmitted %d frames", tx)
	}
}

// TestNICLSOPassesRXTCPToHost: received TCP traffic is NOT segmented (the
// LSO chain applies only to host-originated sends).
func TestNICLSOPassesRXTCPToHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSO = &engine.LSOConfig{MSS: 1460, BytesPerCycle: 64}
	src := &tcpSource{count: 5}
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(2000, 500_000) {
		t.Fatal("NIC did not go quiet")
	}
	if nic.HostLat.Count != 5 {
		t.Errorf("host deliveries = %d, want 5", nic.HostLat.Count)
	}
	if sends, _ := nic.LSOEng.Counts(); sends != 0 {
		t.Errorf("RX traffic hit the LSO engine: %d", sends)
	}
}

type tcpSource struct {
	count int
	sent  int
}

func (s *tcpSource) Poll(now uint64) *packet.Message {
	if s.sent >= s.count || now < uint64(s.sent*100) {
		return nil
	}
	s.sent++
	return &packet.Message{
		ID:    uint64(s.sent),
		Class: packet.ClassBulk,
		Pkt: packet.NewPacket(800,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP4{10, 0, 0, 9}, Dst: packet.IP4{10, 255, 0, 2}},
			&packet.TCP{SrcPort: 999, DstPort: 80, Seq: 1},
		),
	}
}

// TestNICRateLimiterShapesOneTenant: tenant 2 is limited to 1 Gbps while
// tenant 1 is unlimited; both offer 8 Gbps of GETs. Tenant 2's goodput is
// clamped, tenant 1's is not.
func TestNICRateLimiterShapesOneTenant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RateLimits = map[uint16]float64{2: 1}
	mk := func(tenant uint16, seed uint64) workload.Source {
		return workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: tenant, Class: packet.ClassLatency,
			RateGbps: 8, FreqHz: cfg.FreqHz, Poisson: true,
			Keys: 64, GetRatio: 1.0, ValueBytes: 64, Seed: seed,
		})
	}
	nic := NewNIC(cfg, []engine.Source{workload.NewMerge(mk(1, 1), mk(2, 2))})
	const cycles = 500_000
	nic.Run(cycles)

	t1 := nic.HostLat.Tenant(1).Count()
	t2 := nic.HostLat.Tenant(2).Count()
	if t1 < 5*t2 {
		t.Errorf("limited tenant served %d vs unlimited %d — shaping ineffective", t2, t1)
	}
	// Tenant 2's shaped rate is 1 Gbps over ~58-byte requests ≈ 2.15
	// requests/µs → ≈ 2150 in the 1 ms window, minus ramp-up.
	if t2 < 1400 || t2 > 2400 {
		t.Errorf("limited tenant served %d requests, want ~2000", t2)
	}
	// The unshaped tenant is essentially unimpeded (offered ≈ 11900).
	if t1 < 10000 {
		t.Errorf("unlimited tenant served only %d", t1)
	}
	if _, delayed := nic.RateLim.Counts(); delayed == 0 {
		t.Error("rate limiter never delayed anything")
	}
	// The overload beyond the shaped rate is shed at the limiter's queue
	// (lossy policy), not spread into the fabric.
	if nic.Drops.Value() == 0 {
		t.Error("no overload drops recorded")
	}
}

// TestNICRateLimiterDisabledByDefault: no RateLimits -> no engine placed,
// chains untouched.
func TestNICRateLimiterDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	nic := NewNIC(cfg, []engine.Source{nil})
	if nic.RateLim != nil || nic.LSOEng != nil {
		t.Error("optional engines placed without configuration")
	}
	if nic.Builder.TileByAddr(AddrRateLim) != nil || nic.Builder.TileByAddr(AddrLSO) != nil {
		t.Error("optional tiles present")
	}
}
