package core

import (
	"testing"
	"testing/quick"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/workload"
)

// TestPropertyRequestConservation: for arbitrary workload parameters,
// every admitted request is accounted for — it produced a wire response,
// was dropped by a scheduling queue or the ACL, or the run simply did not
// drain (which RunQuiet rules out). Nothing is silently lost, nothing is
// served twice.
func TestPropertyRequestConservation(t *testing.T) {
	prop := func(seed uint64, countSeed, getSeed, wanSeed uint8, lossy bool) bool {
		count := 5 + uint64(countSeed%40)
		getRatio := float64(getSeed%101) / 100
		wanShare := float64(wanSeed%101) / 100
		cfg := DefaultConfig()
		if lossy {
			cfg.Policy = sched.DropLowestPriority
		} else {
			cfg.Policy = sched.Backpressure
		}
		src := workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 4, FreqHz: cfg.FreqHz,
			Keys: 32, GetRatio: getRatio, WANShare: wanShare,
			ValueBytes: 128, Count: count, Seed: seed,
		})
		nic := NewNIC(cfg, []engine.Source{src})
		if !nic.RunQuiet(3000, 8_000_000) {
			return false
		}
		var rx uint64
		for _, m := range nic.MACs {
			rx += m.RxCount()
		}
		if rx != count {
			return false
		}
		// Every request reaches the host exactly once (no drops at this
		// gentle load) and yields exactly one response on the wire.
		served := nic.WireLat.Count
		dropped := nic.Drops.Value() + nic.RMTStats().Dropped + nic.RMTStats().QueueDropped
		return served+dropped == count && nic.HostLat.Count+uint64(hitCount(nic)) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func hitCount(nic *NIC) int {
	hits, _, _ := nic.Cache.Counts()
	return int(hits)
}

// TestConservationUnderOverload: with heavy overload and the lossy policy,
// served + dropped still equals admitted.
func TestConservationUnderOverload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PCIeGbps = 8 // choke the host link
	cfg.QueueCap = 16
	src := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 20, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 64, Count: 3000, Seed: 3,
	})
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(5000, 20_000_000) {
		t.Fatal("did not drain")
	}
	var rx uint64
	for _, m := range nic.MACs {
		rx += m.RxCount()
	}
	served := nic.WireLat.Count
	dropped := nic.Drops.Value() + nic.RMTStats().Dropped + nic.RMTStats().QueueDropped
	if rx != 3000 {
		t.Fatalf("rx = %d", rx)
	}
	if dropped == 0 {
		t.Error("overload produced no drops")
	}
	if served+dropped != 3000 {
		t.Errorf("served %d + dropped %d != admitted 3000", served, dropped)
	}
}

// TestPerTileDropAccountingUnderOverload: the drop-conservation law holds
// tile by tile, not just in aggregate, and keeps holding when fault
// injection is discarding messages too. Under DropLowestPriority overload
// with flake faults on the cache and DMA engines, every admitted request
// is either served on the wire or accounted to exactly one drop counter:
// injected == served + Σ tile drops + RMT drops once the NIC drains.
func TestPerTileDropAccountingUnderOverload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = sched.DropLowestPriority
	cfg.PCIeGbps = 8 // choke the host link
	cfg.QueueCap = 16
	// Flake windows pinned inside the ~60k-cycle injection interval: the
	// cache sheds every 5th arrival, the DMA engine corrupts every 7th.
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: 10_000, Kind: fault.FlakeDrop, Engine: AddrKVSCache, EveryN: 5, For: 40_000}).
		Add(fault.Event{At: 15_000, Kind: fault.FlakeCorrupt, Engine: AddrDMA, EveryN: 7, For: 30_000})
	src := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 20, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 64, Count: 3000, Seed: 17,
	})
	nic := NewNIC(cfg, []engine.Source{src})
	if !nic.RunQuiet(5000, 20_000_000) {
		t.Fatal("did not drain")
	}
	var rx uint64
	for _, m := range nic.MACs {
		rx += m.RxCount()
	}
	if rx != 3000 {
		t.Fatalf("rx = %d", rx)
	}

	var tileDropped, faultDropped, corrupted uint64
	for _, tile := range nic.Builder.Tiles {
		s := tile.Stats()
		tileDropped += s.Dropped
		faultDropped += s.FaultDropped
		corrupted += s.Corrupted
		// Fault discards are a subset of each tile's drop counter, never a
		// separate (double-counted) pool.
		if s.FaultDropped+s.Corrupted > s.Dropped {
			t.Errorf("tile %s: fault drops %d + corrupted %d exceed dropped %d",
				tile.Name(), s.FaultDropped, s.Corrupted, s.Dropped)
		}
	}
	// Every tile-level drop hit the shared drop sink exactly once.
	if tileDropped != nic.Drops.Value() {
		t.Errorf("Σ per-tile dropped = %d but drop sink counted %d", tileDropped, nic.Drops.Value())
	}
	// Both injected flakes actually fired.
	if faultDropped == 0 {
		t.Error("cache flake-drop window discarded nothing")
	}
	if corrupted == 0 {
		t.Error("DMA corruption window discarded nothing")
	}
	// Conservation across tiles: with the NIC drained there is no in-flight
	// term, so served + every drop counter must equal what was admitted.
	served := nic.WireLat.Count
	rmtDrops := nic.RMTStats().Dropped + nic.RMTStats().QueueDropped
	if served+tileDropped+rmtDrops != rx {
		t.Errorf("served %d + tile drops %d + rmt drops %d != injected %d\n%s",
			served, tileDropped, rmtDrops, rx, nic.TileReport())
	}
}
