package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/workload"
)

// TestWedgedEngineLossyIsolation: with the lossy policy, a dead IPSec
// engine must not take down plain traffic — encrypted messages pile up at
// the wedged tile and are shed there; plain traffic flows normally.
func TestWedgedEngineLossyIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = sched.DropLowestPriority
	cfg.QueueCap = 16
	// Wedge crypto: ~0 bytes/cycle.
	cfg.IPSec = engine.IPSecConfig{BytesPerCycle: 1e-6, SetupCycles: 1 << 30}
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 128, Count: 300, Seed: 1,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Count: 300, Seed: 2,
	})
	nic := NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})
	nic.Run(400_000)

	if served := nic.WireLat.Tenant(1).Count(); served != 300 {
		t.Errorf("plain tenant served %d/300 with a wedged crypto engine", served)
	}
	if served := nic.WireLat.Tenant(2).Count(); served != 0 {
		t.Errorf("encrypted tenant served %d through a wedged engine", served)
	}
	// The encrypted backlog was shed at the IPSec tile, not spread.
	if nic.Drops.Value() == 0 {
		t.Error("no drops despite a wedged engine under lossy policy")
	}
	if p99 := nic.WireLat.Tenant(1).P99(); p99 > 5000 {
		t.Errorf("plain tenant p99 = %v cycles — wedge leaked into its path", p99)
	}
}

// TestWedgedEngineBackpressureSpreads: with lossless backpressure the
// wedged engine's queue fills, the mesh backs up, and eventually the
// bystander suffers too — the §6 trade-off, from the failure side.
func TestWedgedEngineBackpressureSpreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = sched.Backpressure
	cfg.QueueCap = 16
	cfg.IPSec = engine.IPSecConfig{BytesPerCycle: 1e-6, SetupCycles: 1 << 30}
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 128, Seed: 1,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: 2,
	})
	nic := NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})
	nic.Run(500_000)

	if nic.Drops.Value() != 0 {
		t.Errorf("lossless run dropped %d", nic.Drops.Value())
	}
	// The plain tenant offers ~5.9k requests over the run; a healthy NIC
	// serves nearly all (see the lossy test). Under lossless backpressure
	// with a wedged engine the shared fabric clogs and the plain tenant
	// is starved well below that.
	healthyFloor := 2500
	if served := nic.WireLat.Tenant(1).Count(); served > healthyFloor {
		t.Skipf("backpressure did not spread at this load (served %d); model keeps bystander healthy", served)
	}
}
