package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/workload"
)

// TestWedgedEngineLossyIsolation: with the lossy policy, a dead IPSec
// engine must not take down plain traffic — encrypted messages pile up at
// the wedged tile and are shed there; plain traffic flows normally.
func TestWedgedEngineLossyIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = sched.DropLowestPriority
	cfg.QueueCap = 16
	// Wedge crypto: ~0 bytes/cycle.
	cfg.IPSec = engine.IPSecConfig{BytesPerCycle: 1e-6, SetupCycles: 1 << 30}
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 128, Count: 300, Seed: 1,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Count: 300, Seed: 2,
	})
	nic := NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})
	nic.Run(400_000)

	if served := nic.WireLat.Tenant(1).Count(); served != 300 {
		t.Errorf("plain tenant served %d/300 with a wedged crypto engine", served)
	}
	if served := nic.WireLat.Tenant(2).Count(); served != 0 {
		t.Errorf("encrypted tenant served %d through a wedged engine", served)
	}
	// The encrypted backlog was shed at the IPSec tile, not spread.
	if nic.Drops.Value() == 0 {
		t.Error("no drops despite a wedged engine under lossy policy")
	}
	if p99 := nic.WireLat.Tenant(1).P99(); p99 > 5000 {
		t.Errorf("plain tenant p99 = %v cycles — wedge leaked into its path", p99)
	}
}

// TestWedgedEngineBackpressureSpreads: with lossless backpressure the
// wedged engine's queue fills, the mesh backs up, and the bystander tenant
// suffers too — the §6 trade-off, from the failure side. The wedge is
// injected by a fault plan at a pinned cycle, so the test can compare the
// bystander's service rate before and after the spread deterministically.
func TestWedgedEngineBackpressureSpreads(t *testing.T) {
	const wedgeAt = 20_000
	cfg := DefaultConfig()
	cfg.Policy = sched.Backpressure
	cfg.QueueCap = 16
	cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: wedgeAt, Kind: fault.Wedge, Engine: AddrIPSec})
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 128, Seed: 1,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 64, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: 2,
	})
	nic := NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})

	nic.Run(wedgeAt)
	plainAtWedge := nic.WireLat.Tenant(1).Count()
	if plainAtWedge < 150 {
		t.Fatalf("plain tenant served only %d/~200 before the wedge", plainAtWedge)
	}

	// Give the backpressure tree 40k cycles to grow from the wedged tile
	// back to the ingress MAC, then measure the bystander over a long
	// post-spread window.
	nic.Run(40_000)
	plainAtSpread := nic.WireLat.Tenant(1).Count()
	nic.Run(440_000)
	plainEnd := nic.WireLat.Tenant(1).Count()

	// Lossless means lossless: the backlog is held, never shed.
	if nic.Drops.Value() != 0 {
		t.Errorf("lossless run dropped %d", nic.Drops.Value())
	}
	// Starvation: pre-wedge the plain tenant served ~1 request per 100
	// cycles; post-spread its rate must collapse below 5% of that, because
	// every ingress path shares the clogged fabric with the dead engine's
	// backlog.
	postServed := plainEnd - plainAtSpread
	healthyExpect := plainAtWedge * 440_000 / wedgeAt
	if postServed*20 >= healthyExpect {
		t.Errorf("plain tenant served %d post-spread (healthy pace ~%d) — backpressure did not spread",
			postServed, healthyExpect)
	}
	// The congestion tree demonstrably reached the ingress MAC.
	if stalls := nic.Tile(AddrEthBase).Stats().StallCycles; stalls < 100_000 {
		t.Errorf("ingress MAC stalled only %d cycles; expected sustained backpressure", stalls)
	}
	// And the wedged tile is sitting on a full queue it will never serve.
	if qlen := nic.Tile(AddrIPSec).QueueLen(); qlen != cfg.QueueCap {
		t.Errorf("wedged queue length = %d, want full (%d)", qlen, cfg.QueueCap)
	}
}
