package core

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// tenantGetSource builds a bounded all-GET LAN stream for one tenant.
func tenantGetSource(tenant uint16, count, seed uint64) *workload.KVSStream {
	return workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: tenant, Class: packet.ClassLatency,
		RateGbps: 5, FreqHz: 500e6,
		Keys: 64, GetRatio: 1.0,
		ValueBytes: 256, Count: count, Seed: seed,
	})
}

// TestTenantScopedFailover wedges the KVS cache with a tenant fault domain
// declaring that only tenant 1's chains live on it. The monitor must punt
// tenant 1's steering to the host — one tenant-tagged event, no global
// rewrite — while tenant 2's chains keep pointing at the (wedged) cache:
// tenant 1's service continues through the outage, tenant 2's stalls until
// the fault lifts and tenant 1 is reintegrated, and nothing is lost.
func TestTenantScopedFailover(t *testing.T) {
	const (
		count    = 40
		wedgeAt  = 1000
		wedgeFor = 15_000
	)
	cfg := DefaultConfig()
	cfg.Tenants = []uint16{1, 2}
	cfg.QueueCap = 256
	cfg.Health = DefaultHealthConfig()
	cfg.Health.TenantDomains = map[packet.Addr][]uint16{AddrKVSCache: {1}}
	cfg.FaultPlan = (&fault.Plan{}).
		Add(fault.Event{At: wedgeAt, Kind: fault.Wedge, Engine: AddrKVSCache, For: wedgeFor})
	nic := NewNIC(cfg, []engine.Source{
		tenantGetSource(1, count, 31),
		tenantGetSource(2, count, 37),
	})

	// Mid-outage: the punt happened, was tenant-scoped, and tenant 1 is
	// being served while tenant 2 waits on the wedged cache.
	nic.Run(14_000)
	punt, ok := findEvent(nic.Events, "punted", uint16(AddrKVSCache))
	if !ok {
		t.Fatalf("no punt event for the cache:\n%s", nic.Events.String())
	}
	if !punt.Tenanted || punt.Tenant != 1 {
		t.Errorf("punt event = %+v, want tenant-scoped to tenant 1", punt)
	}
	for _, e := range nic.Events.Events() {
		if e.Engine == AddrKVSCache && (e.Kind == "punted" || e.Kind == "rerouted") && !e.Tenanted {
			t.Errorf("global steering rewrite for a tenant-domain engine: %+v", e)
		}
	}
	w1, w2 := nic.WireLat.Tenant(1).Count(), nic.WireLat.Tenant(2).Count()
	if w1 <= w2 {
		t.Errorf("mid-outage wire responses: tenant1=%d tenant2=%d, want tenant 1 ahead (punted to host)\n%s",
			w1, w2, nic.TenantReport())
	}

	// After the fault lifts: tenant 1 reintegrates (tenant-scoped), tenant
	// 2's backlog drains through the healed cache, and both tenants' full
	// request counts are answered with zero drops.
	nic.Run(400_000)
	reint, ok := findEvent(nic.Events, "reintegrated", uint16(AddrKVSCache))
	if !ok {
		t.Fatalf("no reintegration event:\n%s", nic.Events.String())
	}
	if !reint.Tenanted || reint.Tenant != 1 {
		t.Errorf("reintegration event = %+v, want tenant-scoped to tenant 1", reint)
	}
	for tenant := uint16(1); tenant <= 2; tenant++ {
		if n := nic.WireLat.Tenant(tenant).Count(); n != count {
			t.Errorf("tenant %d wire responses = %d, want %d\nevents:\n%s\n%s",
				tenant, n, count, nic.Events.String(), nic.TenantReport())
		}
	}
	if nic.Drops.Value() != 0 {
		t.Errorf("drops = %d, want 0 (tenant-scoped failover must be lossless)", nic.Drops.Value())
	}
}
