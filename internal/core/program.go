package core

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
)

// ProgramConfig parameterizes the canonical PANIC steering program: the
// RMT pipeline program that classifies messages, computes offload chains
// and per-hop slack values (§3.1.2), and load-balances host-bound traffic
// across descriptor queues.
type ProgramConfig struct {
	// Ports is the number of Ethernet ports; responses to client subnet
	// 10.P.0.0/16 leave through port P.
	Ports int
	// WANPort is the port serving the WAN (203.0.0.0/8); replies to WAN
	// clients are chained through the IPSec engine first.
	WANPort int
	// Queues is the number of host descriptor queues to load-balance
	// over.
	Queues uint64
	// SlackLatency, SlackBulk, and SlackControl are the per-hop slack
	// values (cycles) stamped by class. Smaller = scheduled sooner under
	// LSTF.
	SlackLatency, SlackBulk, SlackControl uint32
	// EnableLSO chains host-originated TCP sends through the TCP
	// segmentation engine before egress.
	EnableLSO bool
	// EnableRateLimiter places the rate-limiter hop; RateLimitTenants
	// lists the tenants whose key-value chains go through it (SENIC-style
	// inline enforcement; unlimited tenants bypass the shaper entirely).
	EnableRateLimiter bool
	RateLimitTenants  []uint16
	// Tenants lists the known tenants. Non-empty, the program gains a
	// per-tenant chain table: each tenant's key-value requests match its
	// own entries (keyed on the classified meta.tenant), so the control
	// plane can steer — and on failure, punt — one tenant's chains without
	// touching any other tenant's. Tenants absent from the list fall back
	// to the shared classify entries.
	Tenants []uint16
	// RackForward turns the NIC into a rack switch port (the fleet layer's
	// program): traffic whose IP destination lies in the inter-NIC rack
	// subnet (172.N.0.0/16 addresses NIC N) is chained straight to the
	// RackUplinkPort instead of being served locally, except for the NIC's
	// own subnet (RackLocalNIC), which is routed to RackClientPort and
	// classified normally. The fleet's egress tap picks rack-destined
	// frames off the uplink wire and walks them through the ToR model.
	RackForward bool
	// RackLocalNIC is this NIC's rack subnet index (172.RackLocalNIC/16).
	RackLocalNIC int
	// RackUplinkPort is the Ethernet port facing the ToR.
	RackUplinkPort int
	// RackClientPort is the port local rack clients (172.RackLocalNIC.x.y)
	// are reached through.
	RackClientPort int
}

// DefaultProgramConfig returns the canonical operating point.
func DefaultProgramConfig(ports int) ProgramConfig {
	return ProgramConfig{
		Ports:        ports,
		WANPort:      0,
		Queues:       8,
		SlackLatency: 50,
		SlackBulk:    20000,
		SlackControl: 0,
	}
}

// BuildProgram constructs the steering program. Stages:
//
//  1. acl — installable drop rules (empty by default; §6's DoS shedding).
//  2. tenantmap — classifies the message into a tenant from wire bytes:
//     the parsed KVS tenant for plaintext requests/responses, the ESP SPI
//     for encrypted ones (SPI = tenant + 1), else the ingress default.
//     The result in meta.tenant is the match key for every downstream
//     per-tenant entry and becomes the message's accounting tenant.
//  3. slack — class → slack base (scratch1) and lossless flagging.
//  4. txroute — LPM on IP dst → egress port address (scratch0), WAN
//     flagging (scratch2).
//  5. classify — builds the offload chain: ESP → IPSec; GET/SET →
//     cache→DMA; responses → [IPSec →] egress port; everything else →
//     DMA (host).
//  6. tenantchain (when Tenants is set) — per-tenant chain entries: each
//     known tenant's plaintext key-value requests rebuild their chain
//     from the tenant's own table entries, the unit the control plane's
//     tenant-scoped failover rewrites.
//  7. lb — flow hash → descriptor queue; per-tenant packet counters in
//     stateful registers.
func BuildProgram(cfg ProgramConfig) *rmt.Program {
	if cfg.Ports < 1 {
		panic(fmt.Sprintf("core: program for %d ports", cfg.Ports))
	}
	if cfg.Queues == 0 {
		cfg.Queues = 1
	}

	acl := rmt.NewTable("acl", rmt.MatchTernary,
		[]rmt.FieldID{rmt.FieldIPSrc, rmt.FieldL4Dst}, 0, rmt.Action{})

	exact := ^uint64(0)

	// tenantmap derives the accounting tenant from wire bytes. The default
	// keeps meta.tenant as set at parse time (the ingress default carried
	// on the message) — raw streams with no tenant header stay on their
	// configured tenant.
	tenantmap := rmt.NewTable("tenantmap", rmt.MatchTernary,
		[]rmt.FieldID{rmt.FieldIPProto, rmt.FieldL4Dst, rmt.FieldL4Src}, 0, rmt.Action{})
	tenantmap.Add(rmt.Entry{ // encrypted: SPI = tenant + 1 by convention
		Values: []uint64{packet.ProtoESP, 0, 0}, Masks: []uint64{exact, 0, 0}, Priority: 100,
		Action: rmt.NewAction("tenant-from-spi",
			rmt.OpCopy{Dst: rmt.FieldMetaTenant, Src: rmt.FieldESPSPI},
			rmt.OpAdd{Field: rmt.FieldMetaTenant, Delta: -1}),
	})
	fromKVS := rmt.NewAction("tenant-from-kvs",
		rmt.OpCopy{Dst: rmt.FieldMetaTenant, Src: rmt.FieldKVSTenant})
	tenantmap.Add(rmt.Entry{ // plaintext request: tenant from the KVS header
		Values: []uint64{packet.ProtoUDP, uint64(packet.KVSPort), 0},
		Masks:  []uint64{exact, exact, 0}, Priority: 90,
		Action: fromKVS,
	})
	tenantmap.Add(rmt.Entry{ // response: ports swapped, same header
		Values: []uint64{packet.ProtoUDP, 0, uint64(packet.KVSPort)},
		Masks:  []uint64{exact, 0, exact}, Priority: 90,
		Action: fromKVS,
	})

	slack := rmt.NewTable("slack", rmt.MatchExact,
		[]rmt.FieldID{rmt.FieldMetaClass}, 0,
		rmt.NewAction("bulk-default", rmt.OpSet{Field: rmt.FieldMetaScratch1, Value: uint64(cfg.SlackBulk)}))
	slack.Add(rmt.Entry{
		Values: []uint64{uint64(packet.ClassLatency)},
		Action: rmt.NewAction("latency", rmt.OpSet{Field: rmt.FieldMetaScratch1, Value: uint64(cfg.SlackLatency)}),
	})
	slack.Add(rmt.Entry{
		Values: []uint64{uint64(packet.ClassControl)},
		Action: rmt.NewAction("control",
			rmt.OpSet{Field: rmt.FieldMetaScratch1, Value: uint64(cfg.SlackControl)},
			rmt.OpOr{Field: rmt.FieldMetaNewFlags, Bits: packet.ChainFlagLossless},
		),
	})

	txroute := rmt.NewTable("txroute", rmt.MatchLPM,
		[]rmt.FieldID{rmt.FieldIPDst}, 32,
		rmt.NewAction("default-port", rmt.OpSet{Field: rmt.FieldMetaScratch0, Value: uint64(AddrEthBase)}))
	for p := 0; p < cfg.Ports; p++ {
		prefix := uint64(10)<<24 | uint64(p)<<16 // 10.P.0.0/16
		txroute.Add(rmt.Entry{
			Values: []uint64{prefix}, PrefixLen: 16,
			Action: rmt.NewAction(fmt.Sprintf("port%d", p),
				rmt.OpSet{Field: rmt.FieldMetaScratch0, Value: uint64(AddrEthBase) + uint64(p)}),
		})
	}
	txroute.Add(rmt.Entry{
		Values: []uint64{uint64(203) << 24}, PrefixLen: 8, // 203.0.0.0/8: WAN
		Action: rmt.NewAction("wan",
			rmt.OpSet{Field: rmt.FieldMetaScratch0, Value: uint64(AddrEthBase) + uint64(cfg.WANPort)},
			rmt.OpSet{Field: rmt.FieldMetaScratch2, Value: 1}),
	})
	if cfg.RackForward {
		// 172.0.0.0/8 is the rack: anything for another NIC's subnet goes
		// out the uplink (scratch2 = 2 marks rack transit). The NIC's own
		// /16 is more specific and overrides: local rack clients are
		// reached through the client port and classified as ordinary LAN
		// traffic (scratch2 stays 0).
		txroute.Add(rmt.Entry{
			Values: []uint64{uint64(172) << 24}, PrefixLen: 8,
			Action: rmt.NewAction("rack-uplink",
				rmt.OpSet{Field: rmt.FieldMetaScratch0, Value: uint64(AddrEthBase) + uint64(cfg.RackUplinkPort)},
				rmt.OpSet{Field: rmt.FieldMetaScratch2, Value: 2}),
		})
		txroute.Add(rmt.Entry{
			Values: []uint64{uint64(172)<<24 | uint64(cfg.RackLocalNIC)<<16}, PrefixLen: 16,
			Action: rmt.NewAction("rack-local",
				rmt.OpSet{Field: rmt.FieldMetaScratch0, Value: uint64(AddrEthBase) + uint64(cfg.RackClientPort)}),
		})
	}

	slackFrom := func(ops ...rmt.Op) rmt.Action { return rmt.Action{Ops: ops} }
	hop := func(e packet.Addr) rmt.Op {
		return rmt.OpPushHop{Engine: e, SlackFrom: rmt.FieldMetaScratch1, HasSlackFrom: true}
	}
	hopFromField := rmt.OpPushHopFromField{EngineFrom: rmt.FieldMetaScratch0, SlackFrom: rmt.FieldMetaScratch1, HasSlackFrom: true}

	classify := rmt.NewTable("classify", rmt.MatchTernary,
		[]rmt.FieldID{rmt.FieldIPProto, rmt.FieldKVSOp, rmt.FieldMetaScratch2, rmt.FieldMetaTenant}, 0,
		// Default: unclassified traffic goes to the host.
		slackFrom(hop(AddrDMA)))
	classify.Add(rmt.Entry{ // encrypted: decrypt first, then second RMT pass
		Values: []uint64{packet.ProtoESP, 0, 0, 0}, Masks: []uint64{exact, 0, 0, 0}, Priority: 100,
		Action: slackFrom(hop(AddrIPSec)),
	})
	// Limited tenants' requests are shaped before the cache; everyone
	// else goes straight to the cache and host.
	if cfg.EnableRateLimiter {
		for _, tenant := range cfg.RateLimitTenants {
			for _, op := range []packet.KVSOp{packet.KVSGet, packet.KVSSet} {
				classify.Add(rmt.Entry{
					Values:   []uint64{0, uint64(op), 0, uint64(tenant)},
					Masks:    []uint64{0, exact, 0, exact},
					Priority: 95,
					Action:   slackFrom(hop(AddrRateLim), hop(AddrKVSCache), hop(AddrDMA)),
				})
			}
		}
	}
	classify.Add(rmt.Entry{ // GET: cache, then host on miss
		Values: []uint64{0, uint64(packet.KVSGet), 0, 0}, Masks: []uint64{0, exact, 0, 0}, Priority: 90,
		Action: slackFrom(hop(AddrKVSCache), hop(AddrDMA)),
	})
	classify.Add(rmt.Entry{ // SET: cache update, then host log
		Values: []uint64{0, uint64(packet.KVSSet), 0, 0}, Masks: []uint64{0, exact, 0, 0}, Priority: 90,
		Action: slackFrom(hop(AddrKVSCache), hop(AddrDMA)),
	})
	if cfg.RackForward {
		classify.Add(rmt.Entry{ // rack transit: straight to the uplink toward the ToR
			Values: []uint64{0, 0, 2, 0}, Masks: []uint64{0, 0, exact, 0}, Priority: 98,
			Action: slackFrom(hopFromField),
		})
	}
	for _, op := range []packet.KVSOp{packet.KVSGetResp, packet.KVSSetResp} {
		classify.Add(rmt.Entry{ // WAN response: encrypt, then egress
			Values: []uint64{0, uint64(op), 1, 0}, Masks: []uint64{0, exact, exact, 0}, Priority: 85,
			Action: slackFrom(hop(AddrIPSec), hopFromField),
		})
		classify.Add(rmt.Entry{ // LAN response: straight to egress
			Values: []uint64{0, uint64(op), 0, 0}, Masks: []uint64{0, exact, 0, 0}, Priority: 80,
			Action: slackFrom(hopFromField),
		})
	}

	// Per-tenant chain table: each known tenant's plaintext key-value
	// requests rebuild the chain classify installed from the tenant's own
	// entries (same hops, tenant-owned table state). Matching requires
	// proto = UDP so encrypted requests keep their IPSec chain and come
	// back through here after decryption. This is the rewrite unit for
	// tenant-scoped fault domains: RewriteEngineTenant on meta.tenant
	// touches exactly one tenant's entries.
	var tenantStage []*rmt.Table
	if len(cfg.Tenants) > 0 {
		limited := make(map[uint16]bool, len(cfg.RateLimitTenants))
		if cfg.EnableRateLimiter {
			for _, t := range cfg.RateLimitTenants {
				limited[t] = true
			}
		}
		// Under RackForward the match key widens with scratch2 == 0 (not
		// rack transit): a request passing through on its way to another
		// NIC must keep the uplink chain classify installed, not be
		// rebuilt into this NIC's serving chain. PHV meta is fresh per
		// pass, so decrypted WAN requests still re-classify correctly.
		fields := []rmt.FieldID{rmt.FieldMetaTenant, rmt.FieldKVSOp, rmt.FieldIPProto}
		if cfg.RackForward {
			fields = append(fields, rmt.FieldMetaScratch2)
		}
		tenantchain := rmt.NewTable("tenantchain", rmt.MatchTernary, fields, 0, rmt.Action{})
		for _, tenant := range cfg.Tenants {
			for _, op := range []packet.KVSOp{packet.KVSGet, packet.KVSSet} {
				ops := []rmt.Op{rmt.OpClearChain{}}
				if limited[tenant] {
					ops = append(ops, hop(AddrRateLim))
				}
				ops = append(ops, hop(AddrKVSCache), hop(AddrDMA))
				values := []uint64{uint64(tenant), uint64(op), packet.ProtoUDP}
				masks := []uint64{exact, exact, exact}
				if cfg.RackForward {
					values = append(values, 0)
					masks = append(masks, exact)
				}
				tenantchain.Add(rmt.Entry{
					Values:   values,
					Masks:    masks,
					Priority: 50,
					Action:   rmt.NewAction(fmt.Sprintf("tenant%d-%v", tenant, op), ops...),
				})
			}
		}
		tenantStage = []*rmt.Table{tenantchain}
	}

	// Host-originated TCP (meta.port = ^uint32(0): no ingress port) goes
	// through the segmentation engine, then the egress port the txroute
	// stage chose. The table runs in the stage after classify so its
	// OpClearChain overrides the default to-host chain.
	var lsoStage []*rmt.Table
	if cfg.EnableLSO {
		lso := rmt.NewTable("lso", rmt.MatchTernary,
			[]rmt.FieldID{rmt.FieldIPProto, rmt.FieldMetaPort}, 0, rmt.Action{})
		lso.Add(rmt.Entry{
			Values:   []uint64{packet.ProtoTCP, 0xffffffff},
			Masks:    []uint64{exact, 0xffffffff},
			Priority: 10,
			Action: rmt.NewAction("segment",
				rmt.OpClearChain{},
				hop(AddrLSO), hopFromField),
		})
		lsoStage = []*rmt.Table{lso}
	}

	lb := rmt.NewTable("lb", rmt.MatchExact,
		[]rmt.FieldID{rmt.FieldMetaScratch2}, 0,
		rmt.NewAction("queue-select",
			rmt.OpHash{Dst: rmt.FieldMetaQueue, Srcs: []rmt.FieldID{
				rmt.FieldIPSrc, rmt.FieldIPDst, rmt.FieldL4Src, rmt.FieldL4Dst}},
			rmt.OpMod{Field: rmt.FieldMetaQueue, N: cfg.Queues},
			rmt.OpRegAdd{Reg: "tenant_pkts", IndexFrom: rmt.FieldMetaTenant, Delta: 1, Dst: rmt.FieldMetaHash},
		))

	stages := [][]*rmt.Table{{acl}, {tenantmap}, {slack}, {txroute}, {classify}}
	if tenantStage != nil {
		stages = append(stages, tenantStage)
	}
	if lsoStage != nil {
		stages = append(stages, lsoStage)
	}
	stages = append(stages, []*rmt.Table{lb})
	prog := rmt.NewProgram(rmt.StandardParser(), stages...)
	prog.Regs.Define("tenant_pkts", 256)
	return prog
}

// InstallDropRule adds an ACL entry dropping traffic from the given IPv4
// /prefix source (the §6 DoS-shedding knob). Call before or during a run.
func InstallDropRule(prog *rmt.Program, srcPrefix uint64, prefixLen int, priority int) {
	acl := prog.Stages[0][0]
	if acl.Name != "acl" {
		panic("core: program has no acl stage")
	}
	bits := 32 - prefixLen
	mask := (^uint64(0) << bits) & 0xffffffff
	acl.Add(rmt.Entry{
		Values:   []uint64{srcPrefix & mask, 0},
		Masks:    []uint64{mask, 0},
		Priority: priority,
		Action:   rmt.NewAction("drop", rmt.OpDrop{}),
	})
}
