package bench

import (
	"testing"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// failoverNIC builds the failover scenario: mixed plain+encrypted KVS load,
// the IPSec engine wedged at a pinned cycle, and (optionally) the health
// monitor with a hot standby.
func failoverNIC(replicas int, health bool, wedgeAt uint64, seed uint64) *core.NIC {
	cfg := core.DefaultConfig()
	cfg.IPSecReplicas = replicas
	if health {
		cfg.Health = core.DefaultHealthConfig()
	}
	if wedgeAt > 0 {
		cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: wedgeAt, Kind: fault.Wedge, Engine: core.AddrIPSec})
	}
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency, RateGbps: 6, FreqHz: freq, Poisson: true,
		Keys: 1024, GetRatio: 1.0, ValueBytes: 256, Seed: seed,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency, RateGbps: 6, FreqHz: freq, Poisson: true,
		Keys: 1024, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 256, Seed: seed + 1,
	})
	return core.NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})
}

// BenchmarkFailoverMTTR — mean time to recovery of the self-healing
// control plane: wedge the crypto engine at cycle 200k with a hot standby
// in place and report how long until the replica is serving (detection
// window + reroute + first completion). Reported: mttr_cycles, mttr_us,
// detect_cycles (fault -> declared failed).
func BenchmarkFailoverMTTR(b *testing.B) {
	const wedgeAt = 200_000
	var mttr, detect float64
	for i := 0; i < b.N; i++ {
		nic := failoverNIC(2, true, wedgeAt, 7)
		nic.Run(500_000)
		m, ok := nic.Events.MTTR(core.AddrIPSec)
		if !ok {
			b.Fatalf("no completed failure episode:\n%s", nic.Events.String())
		}
		mttr = float64(m)
		for _, e := range nic.Events.Events() {
			if e.Kind == "detected" && e.Engine == core.AddrIPSec {
				detect = float64(e.Cycle - wedgeAt)
				break
			}
		}
	}
	b.ReportMetric(mttr, "mttr_cycles")
	b.ReportMetric(mttr/freq*1e6, "mttr_us")
	b.ReportMetric(detect, "detect_cycles")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkBystanderImpact — what the failure of one tenant's engine does
// to everyone else, across recovery strategies. Each sub-benchmark wedges
// the IPSec engine at cycle 200k of 1M and reports the PLAIN (bystander)
// tenant's served count and p99, plus the encrypted tenant's served count.
// healthy is the no-fault reference.
func BenchmarkBystanderImpact(b *testing.B) {
	scenarios := []struct {
		name     string
		replicas int
		health   bool
		wedgeAt  uint64
	}{
		{"healthy", 0, false, 0},
		{"wedge-no-heal", 0, false, 200_000},
		{"wedge-punt", 0, true, 200_000},
		{"wedge-replica", 2, true, 200_000},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			var plainServed, plainP99, encServed float64
			for i := 0; i < b.N; i++ {
				nic := failoverNIC(sc.replicas, sc.health, sc.wedgeAt, 7)
				nic.Run(1_000_000)
				plainServed = float64(nic.WireLat.Tenant(1).Count())
				plainP99 = nic.WireLat.Tenant(1).P99()
				encServed = float64(nic.WireLat.Tenant(2).Count())
			}
			b.ReportMetric(plainServed, "plain_served")
			b.ReportMetric(plainP99, "plain_p99_cycles")
			b.ReportMetric(encServed, "enc_served")
			b.ReportMetric(0, "ns/op")
		})
	}
}
