package bench

import (
	"strconv"
	"testing"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// BenchmarkNICLoadLatencyCurve sweeps offered load on the full PANIC NIC
// and reports the response-time curve — the canonical figure for a served
// system: flat latency until a knee, then queueing growth. Useful for
// locating the assembled NIC's operating envelope (per-port ejection
// bandwidth bounds it well before the Ethernet line rate; see
// EXPERIMENTS.md "known modeling deviations").
func BenchmarkNICLoadLatencyCurve(b *testing.B) {
	for _, gbps := range []float64{2, 8, 16, 24, 32} {
		gbps := gbps
		b.Run(strconv.FormatFloat(gbps, 'f', -1, 64)+"Gbps", func(b *testing.B) {
			var p50, p99 float64
			var served uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				src := workload.NewKVSStream(workload.KVSTenantConfig{
					Tenant: 1, Class: packet.ClassLatency,
					RateGbps: gbps, FreqHz: freq, Poisson: true,
					Keys: 4096, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 512, Seed: 31,
				})
				nic := core.NewNIC(cfg, []engine.Source{src})
				for k := uint64(0); k < 1024; k++ {
					nic.Cache.Warm(k, 512)
				}
				nic.Run(500_000)
				p50 = nic.WireLat.All.P50() / freq * 1e6
				p99 = nic.WireLat.All.P99() / freq * 1e6
				served = nic.WireLat.Count
			}
			b.ReportMetric(p50, "rtt_p50_us")
			b.ReportMetric(p99, "rtt_p99_us")
			b.ReportMetric(float64(served), "responses")
		})
	}
}

// BenchmarkNICArchitectureComparison is the headline cross-architecture
// figure: the same mixed workload (30% encrypted) against all four NIC
// designs, reporting p50/p99 request latency to host delivery.
func BenchmarkNICArchitectureComparison(b *testing.B) {
	// PANIC's numbers come from HostLat; baselines expose the same
	// collector. Workload: 6 Gbps, 30% WAN, latency class.
	b.Run("panic", func(b *testing.B) {
		var p50, p99 float64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			nic := core.NewNIC(cfg, []engine.Source{archSrc(41)})
			nic.Run(fig2Cycles)
			p50 = nic.HostLat.All.P50() / freq * 1e6
			p99 = nic.HostLat.All.P99() / freq * 1e6
		}
		b.ReportMetric(p50, "p50_us")
		b.ReportMetric(p99, "p99_us")
	})
	// The three baselines are measured by their own benchmarks
	// (BenchmarkFig2a/b/c); this entry exists so a single -bench run
	// prints PANIC's numbers alongside them.
}

func archSrc(seed uint64) engine.Source {
	return workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 6, FreqHz: freq, Poisson: true,
		Keys: 1024, GetRatio: 0.9, WANShare: 0.3, ValueBytes: 256, Seed: seed,
	})
}
