// Package bench regenerates every table and figure of the paper as Go
// benchmarks. Each benchmark simulates a fixed window per iteration and
// reports the paper's metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper's evaluation reports. The
// experiment index lives in DESIGN.md; measured-vs-paper numbers are
// recorded in EXPERIMENTS.md.
package bench

import (
	"strconv"
	"testing"

	"github.com/panic-nic/panic/internal/analytic"
	"github.com/panic-nic/panic/internal/baseline"
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/workload"
)

const freq = 500e6

// BenchmarkTable2 — Table 2: packets per second needed for line rate, and
// whether the paper's RMT configuration (P parallel pipelines at 500 MHz,
// one packet per cycle each) covers it. Reported metrics per row:
// required_Mpps (analytic), rmt_Mpps (measured service rate of the
// simulated pipelines), and passes_budget (rmt/required, §4.2).
func BenchmarkTable2(b *testing.B) {
	rows := []struct {
		name      string
		rate      float64
		ports     int
		pipelines int
	}{
		{"40Gx2", 40, 2, 2},
		{"40Gx4", 40, 4, 2},
		{"100Gx1", 100, 1, 2},
		{"100Gx2", 100, 2, 2},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			required := analytic.MinPPS(row.rate, row.ports)
			var measured float64
			for i := 0; i < b.N; i++ {
				measured = measureRMTServiceRate(row.pipelines, 100_000)
			}
			b.ReportMetric(required/1e6, "required_Mpps")
			b.ReportMetric(measured/1e6, "rmt_Mpps")
			b.ReportMetric(measured/required, "passes_budget")
		})
	}
}

// measureRMTServiceRate drives P pipelines at full offered load for the
// given cycles and returns the aggregate packets/second they sustain.
func measureRMTServiceRate(pipelines int, cycles uint64) float64 {
	prog := core.BuildProgram(core.DefaultProgramConfig(2))
	msg := kvsMsg(1)
	done := uint64(0)
	pipes := make([]*rmt.Pipeline, pipelines)
	for i := range pipes {
		pipes[i] = rmt.NewPipeline(prog, 1, 1)
	}
	for c := uint64(0); c < cycles; c++ {
		for _, p := range pipes {
			if _, ok := p.Tick(); ok {
				done++
			}
			if p.CanAccept() {
				p.Accept(msg, c)
			}
		}
	}
	return float64(done) / (float64(cycles) / freq)
}

func kvsMsg(tenant uint16) *packet.Message {
	return &packet.Message{
		Tenant: tenant,
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 255, 0, 2}},
			&packet.UDP{SrcPort: 5001, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: tenant, Key: 7},
		),
	}
}

// BenchmarkTable3 — Table 3: mesh bisection bandwidth (analytic), the
// paper's capacity and chain length, and the flit-level simulator's
// measured saturation throughput and the chain length it sustains.
func BenchmarkTable3(b *testing.B) {
	for _, row := range analytic.Table3() {
		p := row.Params
		b.Run(p.Topology()+"/"+itoa(p.WidthBits)+"bit", func(b *testing.B) {
			var point noc.LoadPoint
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultMeshConfig()
				cfg.Width, cfg.Height, cfg.FlitWidthBits = p.K, p.K, p.WidthBits
				point = noc.MeasureSaturation(noc.NewMesh(cfg), p.FreqHz, 64, 2000, 10_000, 7)
			}
			b.ReportMetric(row.BisectionGbps, "bisec_Gbps")
			b.ReportMetric(row.CapacityGbps, "paper_capacity_Gbps")
			b.ReportMetric(row.ChainLen, "paper_chainlen")
			b.ReportMetric(point.DeliveredGbps, "sim_Gbps")
			// Paper chain length + the 4 overhead traversals = total
			// traversals per packet the fabric must sustain at line rate;
			// the simulator reports what a single-VC wormhole mesh
			// actually delivers (see EXPERIMENTS.md).
			b.ReportMetric(row.ChainLen+analytic.OverheadTraversals, "paper_traversals_per_pkt")
			b.ReportMetric(point.DeliveredGbps/p.AggregateLineGbps(), "sim_traversals_per_pkt")
		})
	}
}

func itoa(v int) string {
	if v == 64 {
		return "64"
	}
	return "128"
}

// plainAndWAN builds the two-tenant mix used by the Figure 2 comparisons:
// tenant 1 plain (never needs crypto), tenant 2 fully encrypted.
func plainAndWAN(seed uint64) engine.Source {
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 2, FreqHz: freq, Poisson: true,
		Keys: 256, GetRatio: 1.0, ValueBytes: 128, Seed: seed,
	})
	wan := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 8, FreqHz: freq, Poisson: true,
		Keys: 256, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: seed + 1,
	})
	return workload.NewMerge(plain, wan)
}

func slowIPSec() engine.IPSecConfig {
	return engine.IPSecConfig{BytesPerCycle: 4, SetupCycles: 50}
}

const fig2Cycles = 500_000

// BenchmarkFig2aPipelineHOL — Figure 2a: head-of-line blocking in the
// fixed pipeline. Reports the plain tenant's p99 host-delivery latency
// (µs) under the pipeline, pipeline+bypass, and PANIC.
func BenchmarkFig2aPipelineHOL(b *testing.B) {
	us := func(c float64) float64 { return c / freq * 1e6 }
	b.Run("pipeline", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p := baseline.NewPipelineNIC(baseline.PipelineConfig{
				FreqHz: freq, LineRateGbps: 100,
				Stages: []baseline.PipeStageSpec{{Eng: engine.NewIPSecEngine(slowIPSec()), Needs: baseline.NeedIPSec}},
			}, plainAndWAN(1))
			p.Run(fig2Cycles)
			p99 = us(p.HostLat.Tenant(1).P99())
		}
		b.ReportMetric(p99, "plain_p99_us")
	})
	b.Run("pipeline-bypass", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p := baseline.NewPipelineNIC(baseline.PipelineConfig{
				FreqHz: freq, LineRateGbps: 100,
				Stages: []baseline.PipeStageSpec{{Eng: engine.NewIPSecEngine(slowIPSec()), Needs: baseline.NeedIPSec}},
				Bypass: true,
			}, plainAndWAN(1))
			p.Run(fig2Cycles)
			p99 = us(p.HostLat.Tenant(1).P99())
		}
		b.ReportMetric(p99, "plain_p99_us")
	})
	b.Run("panic", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.IPSec = slowIPSec()
			nic := core.NewNIC(cfg, []engine.Source{plainAndWAN(1)})
			nic.Run(fig2Cycles)
			p99 = us(nic.HostLat.Tenant(1).P99())
		}
		b.ReportMetric(p99, "plain_p99_us")
	})
}

// BenchmarkFig2aRecirculation — Figure 2a: chains whose order disagrees
// with the pipeline layout recirculate, wasting ingress bandwidth. Reports
// recirculations per delivered packet and the ingress bandwidth they
// consumed.
func BenchmarkFig2aRecirculation(b *testing.B) {
	mk := func(names ...string) engine.Source {
		inner := workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 5, FreqHz: freq, Tenant: 1, Seed: 3,
		})
		return &chainTagger{inner: inner, chain: names}
	}
	stages := func() []baseline.PipeStageSpec {
		return []baseline.PipeStageSpec{
			{Eng: engine.NewByteRateEngine("A", 64, 1, nil), Needs: baseline.NeedAll},
			{Eng: engine.NewByteRateEngine("B", 64, 1, nil), Needs: baseline.NeedAll},
		}
	}
	b.Run("in-order", func(b *testing.B) {
		var perPkt float64
		for i := 0; i < b.N; i++ {
			p := baseline.NewPipelineNIC(baseline.PipelineConfig{
				FreqHz: freq, LineRateGbps: 100, Stages: stages(), Recirculate: true,
			}, mk("A", "B"))
			p.Run(fig2Cycles)
			perPkt = float64(p.Recirculations) / float64(p.HostLat.Count)
		}
		b.ReportMetric(perPkt, "recirc_per_pkt")
	})
	b.Run("out-of-order", func(b *testing.B) {
		var perPkt float64
		for i := 0; i < b.N; i++ {
			p := baseline.NewPipelineNIC(baseline.PipelineConfig{
				FreqHz: freq, LineRateGbps: 100, Stages: stages(), Recirculate: true,
			}, mk("B", "A"))
			p.Run(fig2Cycles)
			perPkt = float64(p.Recirculations) / float64(p.HostLat.Count)
		}
		b.ReportMetric(perPkt, "recirc_per_pkt")
	})
}

// chainTagger pre-tags messages with an explicit offload order.
type chainTagger struct {
	inner engine.Source
	chain []string
}

func (s *chainTagger) Poll(now uint64) *packet.Message {
	m := s.inner.Poll(now)
	if m != nil {
		needs := make([]string, len(s.chain))
		copy(needs, s.chain)
		m.Needs = needs
	}
	return m
}

// BenchmarkFig2bManycoreLatency — Figure 2b: the embedded-core
// orchestration cost ("adds a latency of 10 µs or more", §2.3.2) vs
// PANIC's switch-based steering. Reports p50 host-delivery latency.
func BenchmarkFig2bManycoreLatency(b *testing.B) {
	us := func(c float64) float64 { return c / freq * 1e6 }
	src := func() engine.Source {
		return workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 2, FreqHz: freq, Poisson: true,
			Keys: 256, GetRatio: 1.0, ValueBytes: 128, Seed: 5,
		})
	}
	b.Run("manycore-8cores", func(b *testing.B) {
		var p50 float64
		for i := 0; i < b.N; i++ {
			m := baseline.NewManycoreNIC(baseline.ManycoreConfig{
				FreqHz: freq, LineRateGbps: 100,
				Cores: 8, OrchestrationCycles: 5000, HopCycles: 2,
			}, src())
			m.Run(fig2Cycles)
			p50 = us(m.HostLat.All.P50())
		}
		b.ReportMetric(p50, "p50_us")
	})
	b.Run("panic", func(b *testing.B) {
		var p50 float64
		for i := 0; i < b.N; i++ {
			nic := core.NewNIC(core.DefaultConfig(), []engine.Source{src()})
			nic.Run(fig2Cycles)
			p50 = us(nic.HostLat.All.P50())
		}
		b.ReportMetric(p50, "p50_us")
	})
}

// BenchmarkFig2cRMTOnly — Figure 2c: offloads too complex for an RMT
// pipeline are punted to host software. Reports the encrypted tenant's p50
// latency under the RMT-only NIC (software crypto) and PANIC (on-NIC
// IPSec engine).
func BenchmarkFig2cRMTOnly(b *testing.B) {
	us := func(c float64) float64 { return c / freq * 1e6 }
	encrypted := func(seed uint64) engine.Source {
		return workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 2, Class: packet.ClassLatency,
			RateGbps: 4, FreqHz: freq, Poisson: true,
			Keys: 256, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: seed,
		})
	}
	b.Run("rmt-only", func(b *testing.B) {
		var p50 float64
		for i := 0; i < b.N; i++ {
			r := baseline.NewRMTOnlyNIC(baseline.RMTOnlyConfig{
				FreqHz: freq, LineRateGbps: 100,
				NeedsComplex: baseline.NeedIPSec,
				PCIeCycles:   300, HostCycles: 1000,
				HostComplexPerByte: 10, HostCores: 4,
			}, encrypted(7))
			r.Run(fig2Cycles)
			p50 = us(r.HostLat.All.P50())
		}
		b.ReportMetric(p50, "p50_us")
	})
	b.Run("panic", func(b *testing.B) {
		var p50 float64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			nic := core.NewNIC(cfg, []engine.Source{encrypted(7)})
			nic.Run(fig2Cycles)
			p50 = us(nic.HostLat.All.P50())
		}
		b.ReportMetric(p50, "p50_us")
	})
}

// BenchmarkFig3HopLatency — Figure 3 / §3.1.2 timing claims: "The routers
// add one cycle of latency at each hop." Measures mesh delivery latency
// against hop count.
func BenchmarkFig3HopLatency(b *testing.B) {
	for _, hops := range []int{1, 2, 4, 8} {
		b.Run(itoaN(hops)+"hops", func(b *testing.B) {
			var perHop float64
			for i := 0; i < b.N; i++ {
				perHop = measureHopLatency(hops)
			}
			b.ReportMetric(perHop, "cycles_per_hop")
		})
	}
}

func itoaN(v int) string { return strconv.Itoa(v) }

func measureHopLatency(hops int) float64 {
	cfg := noc.DefaultMeshConfig()
	cfg.Width, cfg.Height = hops+1, 1
	m := noc.NewMesh(cfg)
	k := sim.NewKernel(sim.Frequency(freq))
	m.RegisterWith(k)
	m.Inject(0, noc.NodeID(hops), &packet.Message{Pkt: &packet.Packet{PayloadLen: 8}})
	k.RunUntil(func() bool { return m.Stats().Delivered == 1 }, uint64(10*hops+20))
	// Recorded latency is hops + 1 (ejection); per-hop cost excludes it.
	return (m.Stats().MeanLatency() - 1) / float64(hops)
}
